//! Per-query stage tracing for the three-stage pipeline.
//!
//! A [`QueryTrace`] is an `Arc` of relaxed atomics hung off
//! [`QueryOptions::trace`](crate::QueryOptions): when present, the
//! pipeline accumulates wall-clock nanoseconds per stage (candidate
//! generation → evidence scoring → CCDF aggregation) and — on the
//! sharded engine — per owning shard inside the scoring stage, the
//! only stage where work is attributable to a single shard
//! (candidate generation is a union descent over every shard's trees
//! at once). When absent, the pipeline takes no clock readings at
//! all, so the benched hot path is untouched.
//!
//! Tracing never participates in result-affecting state:
//! [`options_fingerprint`](crate::options_fingerprint) excludes it
//! (like `threads`) so traced and untraced runs share cache entries,
//! and the determinism suite pins byte-identical rankings with a
//! trace attached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Accumulated wall-clock nanoseconds for one traced query (or one
/// traced batch — stages sum across batch targets).
#[derive(Debug, Default)]
pub struct QueryTrace {
    /// Stage 1 — candidate generation (LSH forest lookups).
    pub candidates_ns: AtomicU64,
    /// Stage 2 — pairwise evidence scoring.
    pub score_ns: AtomicU64,
    /// Stage 3 — CCDF-weighted aggregation (Eq. 1–3).
    pub aggregate_ns: AtomicU64,
    /// Scoring nanoseconds attributed to each owning shard (empty on
    /// the monolith engine).
    pub shard_score_ns: Vec<AtomicU64>,
}

impl QueryTrace {
    /// A fresh trace with no per-shard slots (monolith engine).
    pub fn new() -> Arc<Self> {
        Arc::new(QueryTrace::default())
    }

    /// A fresh trace with one scoring slot per shard.
    pub fn with_shards(shards: usize) -> Arc<Self> {
        Arc::new(QueryTrace {
            shard_score_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..QueryTrace::default()
        })
    }

    /// Attribute `ns` of scoring work to `shard` (ignored when the
    /// trace was not sized for shards).
    #[inline]
    pub fn add_shard_ns(&self, shard: usize, ns: u64) {
        if let Some(slot) = self.shard_score_ns.get(shard) {
            slot.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Accumulated stage nanoseconds as `(candidates, score,
    /// aggregate)`.
    pub fn stages_ns(&self) -> (u64, u64, u64) {
        (
            self.candidates_ns.load(Ordering::Relaxed),
            self.score_ns.load(Ordering::Relaxed),
            self.aggregate_ns.load(Ordering::Relaxed),
        )
    }

    /// Per-shard scoring nanoseconds (empty on the monolith).
    pub fn shard_ns(&self) -> Vec<u64> {
        self.shard_score_ns
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// The shard that spent the most scoring time, as
    /// `(shard, nanoseconds)` — the scatter-gather straggler.
    pub fn slowest_shard(&self) -> Option<(usize, u64)> {
        self.shard_ns()
            .into_iter()
            .enumerate()
            .max_by_key(|&(i, ns)| (ns, std::cmp::Reverse(i)))
    }
}

/// Lap timer for the pipeline stages: free when no trace is attached
/// (no clock reads), two `Instant` reads per stage otherwise.
pub struct StageTimer<'a> {
    trace: Option<&'a QueryTrace>,
    last: Option<Instant>,
}

impl<'a> StageTimer<'a> {
    /// Start timing (a no-op when `trace` is `None`).
    pub fn start(trace: Option<&'a QueryTrace>) -> Self {
        StageTimer {
            trace,
            last: trace.map(|_| Instant::now()),
        }
    }

    #[inline]
    fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = self
            .last
            .map(|t| now.duration_since(t).as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        self.last = Some(now);
        ns
    }

    /// Close out stage 1.
    #[inline]
    pub fn candidates_done(&mut self) {
        if let Some(t) = self.trace {
            let ns = self.lap();
            t.candidates_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Close out stage 2.
    #[inline]
    pub fn score_done(&mut self) {
        if let Some(t) = self.trace {
            let ns = self.lap();
            t.score_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Close out stage 3.
    #[inline]
    pub fn aggregate_done(&mut self) {
        if let Some(t) = self.trace {
            let ns = self.lap();
            t.aggregate_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_without_trace_accumulates_nothing() {
        let mut timer = StageTimer::start(None);
        timer.candidates_done();
        timer.score_done();
        timer.aggregate_done();
        // No trace to inspect — the contract is simply "no panic, no
        // clock reads"; the None arm stores no Instant.
        assert!(timer.last.is_none());
    }

    #[test]
    fn stage_timer_attributes_laps_in_order() {
        let trace = QueryTrace::new();
        let mut timer = StageTimer::start(Some(&trace));
        std::thread::sleep(std::time::Duration::from_millis(2));
        timer.candidates_done();
        timer.score_done();
        timer.aggregate_done();
        let (c, s, a) = trace.stages_ns();
        assert!(c >= 2_000_000, "first lap saw the sleep: {c}");
        assert!(s < c && a < c, "later laps are near-instant");
    }

    #[test]
    fn shard_attribution_is_bounds_checked() {
        let trace = QueryTrace::with_shards(2);
        trace.add_shard_ns(0, 5);
        trace.add_shard_ns(1, 9);
        trace.add_shard_ns(7, 100); // out of range: dropped, no panic
        assert_eq!(trace.shard_ns(), vec![5, 9]);
        assert_eq!(trace.slowest_shard(), Some((1, 9)));
        let monolith = QueryTrace::new();
        monolith.add_shard_ns(0, 1);
        assert_eq!(monolith.slowest_shard(), None);
    }
}
