//! Configuration knobs. Defaults follow the paper's evaluation setup
//! (§V, footnote 5): LSH Forest, threshold 0.7, MinHash size 256.

use serde::{Deserialize, Serialize};

/// D3L configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct D3lConfig {
    /// MinHash signature length (paper: 256).
    pub num_perm: usize,
    /// Random-projection signature bits for the embedding index.
    pub embed_bits: usize,
    /// Word-embedding dimensionality.
    pub embed_dim: usize,
    /// LSH Forest tree count (`l`).
    pub trees: usize,
    /// LSH similarity threshold (paper: 0.7) — used by Algorithm 2's
    /// guards and join-edge postulation.
    pub threshold: f64,
    /// q for name q-grams (paper: 4).
    pub q: usize,
    /// Per-target-attribute lookup width as a multiple of the
    /// requested table answer size `k` (candidates gathered per index
    /// before grouping by table).
    pub lookup_factor: usize,
    /// Minimum per-attribute lookup width, so small `k` still gathers
    /// enough candidates to rank.
    pub min_lookup: usize,
    /// Jaccard threshold on tset overlap for postulating SA-join
    /// edges (§IV).
    pub join_threshold: f64,
    /// Maximum SA-join path length explored by Algorithm 3.
    pub max_join_depth: usize,
    /// Deterministic seed for hashing and projections.
    pub seed: u64,
    /// Number of worker threads for index construction (0 = number of
    /// available CPUs).
    pub index_threads: usize,
    /// Number of worker threads for the query pipeline (0 = number of
    /// available CPUs). Results are byte-identical at every thread
    /// count; this only trades latency for cores. The
    /// `D3L_QUERY_THREADS` environment variable overrides both this
    /// field when no explicit per-query override is given (CI uses it
    /// to exercise the single- and multi-threaded paths on the same
    /// test suite).
    pub query_threads: usize,
    /// Number of index shards (1 = the classic monolith). Tables are
    /// assigned to shards by a stable fingerprint of the table name;
    /// each shard owns its four forests and its own snapshot/delta
    /// chain, so a mutation rewrites O(lake/shards) state. Rankings
    /// are byte-identical at every shard count. Stored in the
    /// snapshot config so a reopened index agrees with the writer;
    /// pre-sharding snapshots decode as 1 (a monolith).
    pub shards: usize,
}

impl Default for D3lConfig {
    fn default() -> Self {
        D3lConfig {
            num_perm: 256,
            embed_bits: 256,
            embed_dim: 64,
            trees: 16,
            threshold: 0.7,
            q: 4,
            lookup_factor: 3,
            min_lookup: 50,
            join_threshold: 0.5,
            max_join_depth: 3,
            seed: 0xd31,
            index_threads: 0,
            query_threads: 0,
            shards: 1,
        }
    }
}

impl D3lConfig {
    /// A smaller, faster configuration for tests.
    pub fn fast() -> Self {
        D3lConfig {
            num_perm: 64,
            embed_bits: 64,
            embed_dim: 32,
            trees: 8,
            min_lookup: 20,
            ..Default::default()
        }
    }

    /// Effective thread count for index construction.
    pub fn effective_threads(&self) -> usize {
        Self::auto_threads(self.index_threads)
    }

    /// Effective thread count for the query pipeline. Precedence: an
    /// explicit `per_query` override
    /// ([`crate::query::QueryOptions::threads`]) wins — callers that
    /// set it (e.g. the determinism tests comparing thread counts)
    /// mean it literally — then the `D3L_QUERY_THREADS` environment
    /// variable (CI forces the whole suite through the single- and
    /// fully-parallel paths with it), then
    /// [`D3lConfig::query_threads`]; 0 at any level means "use every
    /// available CPU".
    pub fn effective_query_threads(&self, per_query: Option<usize>) -> usize {
        if let Some(n) = per_query {
            return Self::auto_threads(n);
        }
        if let Some(n) = std::env::var("D3L_QUERY_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return Self::auto_threads(n);
        }
        Self::auto_threads(self.query_threads)
    }

    fn auto_threads(n: usize) -> usize {
        if n > 0 {
            n
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Per-attribute lookup width for a table answer size `k`.
    pub fn lookup_width(&self, k: usize) -> usize {
        (self.lookup_factor * k).max(self.min_lookup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = D3lConfig::default();
        assert_eq!(c.num_perm, 256);
        assert!((c.threshold - 0.7).abs() < 1e-12);
        assert_eq!(c.q, 4);
    }

    #[test]
    fn lookup_width_scales() {
        let c = D3lConfig::default();
        assert_eq!(c.lookup_width(5), 50); // floor
        assert_eq!(c.lookup_width(100), 300);
    }

    #[test]
    fn effective_threads_positive() {
        assert!(D3lConfig::default().effective_threads() >= 1);
        let c = D3lConfig {
            index_threads: 3,
            ..Default::default()
        };
        assert_eq!(c.effective_threads(), 3);
    }

    #[test]
    fn effective_query_threads_precedence() {
        let c = D3lConfig {
            query_threads: 2,
            ..Default::default()
        };
        // Explicit per-query overrides always win, even under the CI
        // env override.
        assert_eq!(c.effective_query_threads(Some(5)), 5);
        assert!(c.effective_query_threads(Some(0)) >= 1);
        assert!(D3lConfig::default().effective_query_threads(None) >= 1);
        // The config fallback only shows when the env override is not
        // active.
        if std::env::var("D3L_QUERY_THREADS").is_err() {
            assert_eq!(c.effective_query_threads(None), 2);
        }
    }
}
