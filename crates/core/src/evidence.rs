//! The five evidence types (§III-A).

use serde::{Deserialize, Serialize};

/// One of the paper's five relatedness evidence types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Evidence {
    /// Attribute **N**ame similarity (q-gram Jaccard).
    Name,
    /// Attribute **V**alue extent overlap (informative-token Jaccard).
    Value,
    /// **F**ormat representation similarity (pattern Jaccard).
    Format,
    /// Word-**E**mbedding similarity (cosine).
    Embedding,
    /// Numeric **D**omain distribution similarity (Kolmogorov–Smirnov).
    Distribution,
}

impl Evidence {
    /// All five types, in the paper's `{N, V, F, E, D}` order —
    /// the layout of [`crate::DistanceVector`].
    pub const ALL: [Evidence; 5] = [
        Evidence::Name,
        Evidence::Value,
        Evidence::Format,
        Evidence::Embedding,
        Evidence::Distribution,
    ];

    /// Position of this evidence type in [`Evidence::ALL`].
    pub fn index(self) -> usize {
        match self {
            Evidence::Name => 0,
            Evidence::Value => 1,
            Evidence::Format => 2,
            Evidence::Embedding => 3,
            Evidence::Distribution => 4,
        }
    }

    /// The paper's single-letter tag.
    pub fn letter(self) -> char {
        match self {
            Evidence::Name => 'N',
            Evidence::Value => 'V',
            Evidence::Format => 'F',
            Evidence::Embedding => 'E',
            Evidence::Distribution => 'D',
        }
    }

    /// Evidence types backed by an LSH index (all but Distribution,
    /// §III-B: "no LSH hashing scheme … leads to analogous gains").
    pub fn is_indexed(self) -> bool {
        self != Evidence::Distribution
    }
}

impl std::fmt::Display for Evidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_indexes_agree() {
        for (i, e) in Evidence::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn letters() {
        let s: String = Evidence::ALL.iter().map(|e| e.letter()).collect();
        assert_eq!(s, "NVFED");
        assert_eq!(Evidence::Name.to_string(), "N");
    }

    #[test]
    fn only_distribution_is_unindexed() {
        assert!(Evidence::Name.is_indexed());
        assert!(Evidence::Value.is_indexed());
        assert!(Evidence::Format.is_indexed());
        assert!(Evidence::Embedding.is_indexed());
        assert!(!Evidence::Distribution.is_indexed());
    }
}
