//! Copy-on-write hot-swap around a persistent engine — the substrate
//! of the concurrent serving layer.
//!
//! A long-lived server must answer queries *while* the lake is
//! maintained (tables added, removed, segments compacted). Guarding
//! one `D3l` with a plain lock would make every mutation a stall for
//! every in-flight query; instead, [`EngineHandle`] keeps the current
//! engine behind `RwLock<Arc<EngineSnapshot>>`:
//!
//! * **Readers** take the read lock just long enough to clone the
//!   `Arc` ([`EngineHandle::snapshot`]) and then query their snapshot
//!   with no lock held at all. A query that started before a mutation
//!   finishes on the exact engine state it started with — there is no
//!   torn state to observe, by construction.
//! * **Writers** serialize on the store mutex, clone the current
//!   engine, apply the mutation to the clone, persist it through
//!   [`IndexStore`] (delta append / compact) and only then swap the
//!   new snapshot in under a brief write lock. A 2xx on a mutation
//!   therefore implies read-your-writes: the swap happened before the
//!   response was written, so any later query observes it.
//!
//! Durability ordering is persist-then-swap: if the delta write
//! fails, the clone is discarded and the served engine still matches
//! the store on disk.
//!
//! Each swap bumps a monotonic version stamped into the snapshot
//! itself, so `(version, engine state)` pairs are atomically
//! consistent — the concurrency stress tests use this to prove the
//! absence of torn reads.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use d3l_store::StoreError;
use d3l_table::{Table, TableId};

use crate::cache::QueryCache;
use crate::index::D3l;
use crate::snapshot::IndexStore;

/// One immutable engine state plus the version it was swapped in at.
#[derive(Debug)]
pub struct EngineSnapshot {
    /// Monotonic swap counter: the base load is version 0 and every
    /// accepted mutation (add, remove, reload) increments it.
    pub version: u64,
    /// The query-ready engine. Immutable — mutations build a new
    /// snapshot.
    pub engine: D3l,
}

/// A maintenance request the serving layer can refuse without
/// touching the store.
#[derive(Debug)]
pub enum MaintenanceError {
    /// An add named a table that is already indexed.
    DuplicateName(String),
    /// A remove named a table that is not indexed (or already
    /// tombstoned).
    UnknownTable(String),
    /// The persistence layer failed.
    Store(StoreError),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::DuplicateName(name) => {
                write!(f, "table {name:?} already indexed")
            }
            MaintenanceError::UnknownTable(name) => {
                write!(f, "no indexed table named {name:?}")
            }
            MaintenanceError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaintenanceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for MaintenanceError {
    fn from(e: StoreError) -> Self {
        MaintenanceError::Store(e)
    }
}

/// Concurrent handle over a persistent engine: lock-free consistent
/// reads, serialized copy-on-write mutations, and a versioned
/// query-result cache whose entries the swap invalidates implicitly.
pub struct EngineHandle {
    current: RwLock<Arc<EngineSnapshot>>,
    store: Mutex<IndexStore>,
    cache: QueryCache,
}

impl EngineHandle {
    /// Wrap an engine and its open store (the post-`create` path:
    /// `IndexStore::create` then serve). The result cache starts at
    /// [`crate::cache::DEFAULT_CACHE_BYTES`]; it holds nothing until
    /// a serving layer populates it, so non-serving users pay only
    /// the empty shards.
    pub fn new(store: IndexStore, engine: D3l) -> Self {
        EngineHandle {
            current: RwLock::new(Arc::new(EngineSnapshot { version: 0, engine })),
            store: Mutex::new(store),
            cache: QueryCache::new(crate::cache::DEFAULT_CACHE_BYTES),
        }
    }

    /// The result cache. Serving layers key entries on
    /// `(target fingerprint, k, options fingerprint, snapshot
    /// version)`; every mutation purges stale versions on swap.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Cold-start a handle from a store directory (base snapshot plus
    /// delta replay — the millisecond load path).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let (store, engine) = IndexStore::open(dir)?;
        Ok(Self::new(store, engine))
    }

    /// The current consistent snapshot. The read lock is held only
    /// for the `Arc` clone; queries run lock-free on the returned
    /// snapshot, which no mutation ever alters.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.read_current().clone()
    }

    /// Profile, index and persist one new table, then swap the
    /// extended engine in. Returns the new table's id and the
    /// snapshot that serves it.
    pub fn add_table(
        &self,
        table: &Table,
    ) -> Result<(TableId, Arc<EngineSnapshot>), MaintenanceError> {
        let mut store = self.lock_store();
        let cur = self.snapshot();
        if cur.engine.name_to_id().contains_key(table.name()) {
            return Err(MaintenanceError::DuplicateName(table.name().to_string()));
        }
        let mut next = cur.engine.clone();
        let id = store.append_add(&mut next, table)?;
        Ok((id, self.swap(&cur, next)))
    }

    /// Tombstone a table by name, persist the removal, and swap the
    /// shrunk engine in.
    pub fn remove_table(
        &self,
        name: &str,
    ) -> Result<(TableId, Arc<EngineSnapshot>), MaintenanceError> {
        let mut store = self.lock_store();
        let cur = self.snapshot();
        let Some(id) = cur.engine.name_to_id().get(name).copied() else {
            return Err(MaintenanceError::UnknownTable(name.to_string()));
        };
        let mut next = cur.engine.clone();
        store.append_remove(&mut next, id)?;
        Ok((id, self.swap(&cur, next)))
    }

    /// Fold the delta segments this handle has observed into a fresh
    /// base snapshot. The engine state is unchanged (compaction
    /// reorganizes disk, not the index), so the version does not
    /// move; segments appended by an external writer and not yet
    /// reloaded survive untouched (see [`IndexStore::compact`]).
    /// Returns the number of folded segments.
    pub fn compact(&self) -> Result<usize, MaintenanceError> {
        let mut store = self.lock_store();
        let cur = self.snapshot();
        Ok(store.compact(&cur.engine)?)
    }

    /// Pick up delta segments appended by another writer (a CLI
    /// `d3l add` next to a serving process): if the directory holds
    /// segments this handle has not replayed, re-open the store and
    /// swap the refreshed engine in. `None` when the handle is
    /// already at the latest state.
    pub fn reload_latest(&self) -> Result<Option<Arc<EngineSnapshot>>, MaintenanceError> {
        let mut store = self.lock_store();
        if !store.has_newer_segments()? {
            return Ok(None);
        }
        let (new_store, engine) = IndexStore::open(store.dir())?;
        let cur = self.snapshot();
        *store = new_store;
        Ok(Some(self.swap(&cur, engine)))
    }

    /// On-disk footprint: `(base bytes, delta bytes, pending delta
    /// segments)`.
    pub fn disk_stats(&self) -> Result<(u64, u64, usize), MaintenanceError> {
        let store = self.lock_store();
        let (base, deltas) = store.disk_bytes()?;
        let pending = store.delta_count()?;
        Ok((base, deltas, pending))
    }

    /// Publish `next` as the successor of `prev` and return the new
    /// snapshot. Callers hold the store lock, so versions move one
    /// writer at a time.
    fn swap(&self, prev: &EngineSnapshot, next: D3l) -> Arc<EngineSnapshot> {
        let swapped = Arc::new(EngineSnapshot {
            version: prev.version + 1,
            engine: next,
        });
        *self
            .current
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = swapped.clone();
        // The version bump just invalidated every cached rendering;
        // drop them eagerly so the byte budget is not held by
        // unreachable entries. (Compaction does not swap: the engine
        // state is unchanged and the cache correctly stays warm.)
        self.cache.purge_stale(swapped.version);
        swapped
    }

    fn read_current(&self) -> std::sync::RwLockReadGuard<'_, Arc<EngineSnapshot>> {
        // A poisoned lock means a panic elsewhere while the guard was
        // held; snapshots are immutable `Arc`s and the swap is a
        // single assignment, so the stored value is always intact.
        self.current
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn lock_store(&self) -> MutexGuard<'_, IndexStore> {
        // Same reasoning: the store handle's bookkeeping is only
        // advanced after a successful durable write.
        self.store
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D3lConfig;
    use d3l_table::DataLake;

    fn handle(tag: &str) -> (EngineHandle, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("d3l_hotswap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut lake = DataLake::new();
        lake.add(
            Table::from_rows(
                "gp",
                &["Practice", "City"],
                &[vec!["Blackfriars".into(), "Salford".into()]],
            )
            .unwrap(),
        )
        .unwrap();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let store = IndexStore::create(&dir, &d3l).unwrap();
        (EngineHandle::new(store, d3l), dir)
    }

    fn extra_table(name: &str) -> Table {
        Table::from_rows(
            name,
            &["GP", "Location"],
            &[vec!["Blackfriars".into(), "Salford".into()]],
        )
        .unwrap()
    }

    #[test]
    fn mutations_version_and_persist() {
        let (handle, dir) = handle("mut");
        assert_eq!(handle.snapshot().version, 0);

        let (id, snap) = handle.add_table(&extra_table("local_gps")).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.engine.live_table_count(), 2);
        assert_eq!(snap.engine.table_name(id), "local_gps");

        // Old snapshots are unaffected by the swap.
        let before = handle.snapshot();
        let (_, after) = handle.remove_table("local_gps").unwrap();
        assert_eq!(before.version, 1);
        assert_eq!(before.engine.live_table_count(), 2);
        assert_eq!(after.version, 2);
        assert_eq!(after.engine.live_table_count(), 1);

        // Both mutations were persisted as segments; compact folds
        // them without moving the version.
        assert_eq!(handle.disk_stats().unwrap().2, 2);
        assert_eq!(handle.compact().unwrap(), 2);
        assert_eq!(handle.disk_stats().unwrap().2, 0);
        assert_eq!(handle.snapshot().version, 2);

        // A cold start over the directory sees the same final state.
        let reopened = EngineHandle::open(&dir).unwrap();
        assert_eq!(
            reopened.snapshot().engine.to_snapshot_bytes(),
            handle.snapshot().engine.to_snapshot_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_unknown_names_are_typed_refusals() {
        let (handle, dir) = handle("refuse");
        assert!(matches!(
            handle.add_table(&extra_table("gp")),
            Err(MaintenanceError::DuplicateName(n)) if n == "gp"
        ));
        assert!(matches!(
            handle.remove_table("never_there"),
            Err(MaintenanceError::UnknownTable(n)) if n == "never_there"
        ));
        // Refusals leave no segments and do not bump the version.
        assert_eq!(handle.disk_stats().unwrap().2, 0);
        assert_eq!(handle.snapshot().version, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_purge_cached_renderings_compaction_keeps_them() {
        use crate::cache::CacheKey;
        let (handle, dir) = handle("cache");
        let key = CacheKey {
            target: [1, 2],
            k: 10,
            opts: 0,
            version: 0,
        };
        handle.cache().put(key, "rendered".into());
        assert!(handle.cache().get(&key).is_some());

        handle.add_table(&extra_table("t2")).unwrap();
        assert!(
            handle.cache().get(&key).is_none(),
            "swap must purge stale-version entries"
        );
        // Entries keyed at the new version survive compaction: the
        // engine state (and thus every rendering) is unchanged.
        let live = CacheKey { version: 1, ..key };
        handle.cache().put(live, "rendered".into());
        handle.compact().unwrap();
        assert!(handle.cache().get(&live).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_latest_picks_up_external_segments() {
        let (handle, dir) = handle("reload");
        assert!(handle.reload_latest().unwrap().is_none(), "nothing new");

        // A second writer (the CLI next to a server) appends a delta.
        let (mut other_store, mut other_engine) = IndexStore::open(&dir).unwrap();
        other_store
            .append_add(&mut other_engine, &extra_table("late"))
            .unwrap();

        let snap = handle
            .reload_latest()
            .unwrap()
            .expect("new segment must be observed");
        assert_eq!(snap.version, 1);
        assert!(snap.engine.name_to_id().contains_key("late"));
        assert!(handle.reload_latest().unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }
}
