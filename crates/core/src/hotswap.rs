//! Copy-on-write hot-swap around a persistent sharded engine — the
//! substrate of the concurrent serving layer.
//!
//! A long-lived server must answer queries *while* the lake is
//! maintained (tables added, removed, segments compacted). Guarding
//! one engine with a plain lock would make every mutation a stall for
//! every in-flight query; instead, [`EngineHandle`] keeps the current
//! engine behind `RwLock<Arc<EngineSnapshot>>`:
//!
//! * **Readers** take the read lock just long enough to clone the
//!   `Arc` ([`EngineHandle::snapshot`]) and then query their snapshot
//!   with no lock held at all. A query that started before a mutation
//!   finishes on the exact engine state it started with — there is no
//!   torn state to observe, by construction.
//! * **Writers** serialize on the store mutex, deep-clone *only the
//!   shard that owns the mutated table* — O(lake/shards) copy and
//!   snapshot work; the other shards are shared by `Arc` — apply the
//!   mutation to the clone, persist it through that shard's
//!   [`IndexStore`] (delta append / compact) and only then swap the
//!   new snapshot in under a brief write lock. A 2xx on a mutation
//!   therefore implies read-your-writes: the swap happened before the
//!   response was written, so any later query observes it.
//!
//! Durability ordering is persist-then-swap: if the delta write
//! fails, the clone is discarded and the served engine still matches
//! the store on disk.
//!
//! Each swap bumps a monotonic version stamped into the snapshot
//! itself, so `(version, engine state)` pairs are atomically
//! consistent — the concurrency stress tests use this to prove the
//! absence of torn reads. The snapshot additionally carries one
//! version stamp *per shard*, advanced only when that shard is
//! rewritten: a mutation's blast radius is visible — and testable —
//! as "every other shard's stamp (and snapshot bytes) unchanged".
//!
//! On disk, a one-shard engine keeps the classic monolith layout
//! (`<dir>/base.d3ls` + deltas); an N-shard engine nests one complete
//! store per shard under `<dir>/shard-NN/`. [`EngineHandle::open`]
//! auto-detects which of the two it was given.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

use d3l_store::layout::{shard_dir_name, shard_dirs};
use d3l_store::{StoreError, BASE_FILE};
use d3l_table::{Table, TableId};
use d3l_telemetry::{Histogram, Registry};

use crate::cache::QueryCache;
use crate::index::{D3l, MemoryFootprint};
use crate::shard::ShardedD3l;
use crate::snapshot::IndexStore;

/// One immutable engine state plus the version it was swapped in at.
#[derive(Debug)]
pub struct EngineSnapshot {
    /// Monotonic swap counter: the base load is version 0 and every
    /// accepted mutation (add, remove, reload) increments it.
    pub version: u64,
    /// Per-shard version stamps: entry `s` is the global version of
    /// the last swap that rewrote shard `s`. A mutation bumps exactly
    /// one entry; the others carry over untouched.
    pub shard_versions: Vec<u64>,
    /// The query-ready engine. Immutable — mutations build a new
    /// snapshot.
    pub engine: ShardedD3l,
    /// Aggregate memory accounting, computed once when the snapshot
    /// is built: the engine is immutable afterwards, so `/stats` can
    /// read this instead of re-walking every forest per request.
    pub footprint: MemoryFootprint,
    /// Per-shard memory accounting, parallel to `shard_versions`.
    pub shard_footprints: Vec<MemoryFootprint>,
}

impl EngineSnapshot {
    /// A snapshot at `version` with every shard stamped at that same
    /// version (the cold-load shape; mutations diverge the stamps).
    pub fn at_version(version: u64, engine: ShardedD3l) -> Self {
        let shard_versions = vec![version; engine.shard_count()];
        EngineSnapshot::with_versions(version, shard_versions, engine)
    }

    /// Build a snapshot with explicit per-shard stamps, sizing the
    /// engine once up front.
    pub fn with_versions(version: u64, shard_versions: Vec<u64>, engine: ShardedD3l) -> Self {
        let shard_footprints = engine.shard_byte_sizes();
        let footprint = MemoryFootprint::sum(&shard_footprints);
        EngineSnapshot {
            version,
            shard_versions,
            engine,
            footprint,
            shard_footprints,
        }
    }
}

/// A maintenance request the serving layer can refuse without
/// touching the store.
#[derive(Debug)]
pub enum MaintenanceError {
    /// An add named a table that is already indexed.
    DuplicateName(String),
    /// A remove named a table that is not indexed (or already
    /// tombstoned).
    UnknownTable(String),
    /// The persistence layer failed.
    Store(StoreError),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::DuplicateName(name) => {
                write!(f, "table {name:?} already indexed")
            }
            MaintenanceError::UnknownTable(name) => {
                write!(f, "no indexed table named {name:?}")
            }
            MaintenanceError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaintenanceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for MaintenanceError {
    fn from(e: StoreError) -> Self {
        MaintenanceError::Store(e)
    }
}

/// Concurrent handle over a persistent engine: lock-free consistent
/// reads, serialized copy-on-write mutations scoped to the owning
/// shard, and a versioned query-result cache whose entries the swap
/// invalidates implicitly.
pub struct EngineHandle {
    current: RwLock<Arc<EngineSnapshot>>,
    /// One store per shard, parallel to `engine.shards()`. A one-shard
    /// engine's single store lives directly in the index root.
    stores: Mutex<Vec<IndexStore>>,
    cache: QueryCache,
    telemetry: EngineTelemetry,
}

/// Engine-owned latency instruments: one registry holding the store
/// operation histograms (`d3l_store_op_seconds{op=...}`), recorded
/// around every snapshot load, delta append, and base compaction the
/// handle performs. Serving layers render the registry into their
/// `/metrics` exposition; recording is lock-free through the
/// pre-registered `Arc`s.
#[derive(Debug)]
pub struct EngineTelemetry {
    registry: Registry,
    /// Cold-start snapshot load + delta replay (per store opened).
    pub load: Arc<Histogram>,
    /// Durable delta append for one add/remove mutation.
    pub append: Arc<Histogram>,
    /// Per-shard base compaction.
    pub compact: Arc<Histogram>,
}

impl EngineTelemetry {
    fn new() -> Self {
        let registry = Registry::new();
        const NAME: &str = "d3l_store_op_seconds";
        const HELP: &str =
            "Index store operation latency: snapshot load, delta append, base compaction.";
        let load = registry.histogram(NAME, HELP, &[("op", "load")]);
        let append = registry.histogram(NAME, HELP, &[("op", "append")]);
        let compact = registry.histogram(NAME, HELP, &[("op", "compact")]);
        EngineTelemetry {
            registry,
            load,
            append,
            compact,
        }
    }

    /// The registry holding every engine-level series.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl EngineHandle {
    /// Wrap a monolithic engine and its open store (the classic
    /// post-`create` path). The result cache starts at
    /// [`crate::cache::DEFAULT_CACHE_BYTES`]; it holds nothing until
    /// a serving layer populates it, so non-serving users pay only
    /// the empty shards.
    pub fn new(store: IndexStore, engine: D3l) -> Self {
        Self::new_sharded(vec![store], ShardedD3l::from_monolith(engine))
    }

    /// Wrap a sharded engine and its per-shard stores (parallel
    /// vectors: `stores[s]` persists `engine.shards()[s]`).
    pub fn new_sharded(stores: Vec<IndexStore>, engine: ShardedD3l) -> Self {
        assert_eq!(
            stores.len(),
            engine.shard_count(),
            "one store per shard required"
        );
        EngineHandle {
            current: RwLock::new(Arc::new(EngineSnapshot::at_version(0, engine))),
            stores: Mutex::new(stores),
            cache: QueryCache::new(crate::cache::DEFAULT_CACHE_BYTES),
            telemetry: EngineTelemetry::new(),
        }
    }

    /// The engine-level latency instruments (store operations).
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// Persist a freshly built engine under `dir` and wrap it. A
    /// one-shard engine writes the monolith layout (`base.d3ls` in
    /// the root); N shards write one store per `shard-NN/`
    /// subdirectory. Leftovers of the *other* layout in `dir` are
    /// removed first, so re-indexing with a different shard count
    /// never leaves an ambiguous root.
    pub fn create(dir: impl AsRef<Path>, engine: ShardedD3l) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut stores = Vec::with_capacity(engine.shard_count());
        if engine.shard_count() == 1 {
            for (_, stale) in shard_dirs(dir)? {
                std::fs::remove_dir_all(stale)?;
            }
            stores.push(IndexStore::create(dir, &engine.shards()[0])?);
        } else {
            let stale_base = dir.join(BASE_FILE);
            if stale_base.exists() {
                std::fs::remove_file(&stale_base)?;
            }
            for (s, shard) in engine.shards().iter().enumerate() {
                stores.push(IndexStore::create(dir.join(shard_dir_name(s)), shard)?);
            }
        }
        Ok(Self::new_sharded(stores, engine))
    }

    /// The result cache. Serving layers key entries on
    /// `(target fingerprint, k, options fingerprint, snapshot
    /// version)`; every mutation purges stale versions on swap.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Cold-start a handle from an index directory (base snapshots
    /// plus delta replay — the millisecond load path). Auto-detects
    /// the layout: a `base.d3ls` in the root is a monolith; otherwise
    /// the `shard-NN/` subdirectories are opened as one store each
    /// (ordinals must be contiguous from 0, and each shard's stored
    /// config must agree on the shard count).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        if dir.join(BASE_FILE).exists() {
            let t0 = Instant::now();
            let (store, engine) = IndexStore::open(dir)?;
            let handle = Self::new(store, engine);
            handle.telemetry.load.record(t0.elapsed());
            return Ok(handle);
        }
        let found = shard_dirs(dir)?;
        if found.is_empty() {
            // Neither layout: surface the monolith open error (missing
            // base snapshot), which names the path the caller gave.
            let (store, engine) = IndexStore::open(dir)?;
            return Ok(Self::new(store, engine));
        }
        for (expect, (ordinal, path)) in found.iter().enumerate() {
            if *ordinal != expect {
                return Err(StoreError::corrupt(format!(
                    "sharded index is missing {}; found {}",
                    shard_dir_name(expect),
                    path.display()
                )));
            }
        }
        let mut stores = Vec::with_capacity(found.len());
        let mut engines = Vec::with_capacity(found.len());
        let mut load_ns = Vec::with_capacity(found.len());
        for (_, path) in &found {
            let t0 = Instant::now();
            let (store, engine) = IndexStore::open(path)?;
            load_ns.push(t0.elapsed());
            if engine.config().shards != found.len() {
                return Err(StoreError::corrupt(format!(
                    "{} believes in {} shards, directory holds {}",
                    path.display(),
                    engine.config().shards,
                    found.len()
                )));
            }
            stores.push(store);
            engines.push(engine);
        }
        let handle = Self::new_sharded(stores, ShardedD3l::from_shards(engines));
        for d in load_ns {
            handle.telemetry.load.record(d);
        }
        Ok(handle)
    }

    /// The current consistent snapshot. The read lock is held only
    /// for the `Arc` clone; queries run lock-free on the returned
    /// snapshot, which no mutation ever alters.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.read_current().clone()
    }

    /// Profile, index and persist one new table, then swap the
    /// extended engine in. Only the shard owning the table's name is
    /// cloned and rewritten. Returns the new table's id and the
    /// snapshot that serves it.
    pub fn add_table(
        &self,
        table: &Table,
    ) -> Result<(TableId, Arc<EngineSnapshot>), MaintenanceError> {
        let mut stores = self.lock_stores();
        let cur = self.snapshot();
        if cur.engine.name_to_id().contains_key(table.name()) {
            return Err(MaintenanceError::DuplicateName(table.name().to_string()));
        }
        let s = cur.engine.shard_of(table.name());
        let mut shard = (*cur.engine.shards()[s]).clone();
        let t0 = Instant::now();
        let id = if cur.engine.shard_count() == 1 {
            // The monolith layout keeps the classic local-id `Add`
            // record, byte-compatible with pre-sharding stores.
            stores[0].append_add(&mut shard, table)?
        } else {
            let id = cur.engine.next_table_id();
            stores[s].append_add_at(&mut shard, table, id)?
        };
        self.telemetry.append.record(t0.elapsed());
        let next = cur.engine.with_shard(s, shard);
        Ok((id, self.swap(&cur, next, s)))
    }

    /// Tombstone a table by name, persist the removal in the owning
    /// shard's store, and swap the shrunk engine in.
    pub fn remove_table(
        &self,
        name: &str,
    ) -> Result<(TableId, Arc<EngineSnapshot>), MaintenanceError> {
        let mut stores = self.lock_stores();
        let cur = self.snapshot();
        let Some(id) = cur.engine.name_to_id().get(name).copied() else {
            return Err(MaintenanceError::UnknownTable(name.to_string()));
        };
        let s = cur
            .engine
            .owner_of(id)
            .expect("a name-resolved table has an owner");
        let mut shard = (*cur.engine.shards()[s]).clone();
        let t0 = Instant::now();
        stores[s].append_remove(&mut shard, id)?;
        self.telemetry.append.record(t0.elapsed());
        let next = cur.engine.with_shard(s, shard);
        Ok((id, self.swap(&cur, next, s)))
    }

    /// Fold every shard's observed delta segments into fresh base
    /// snapshots. The engine state is unchanged (compaction
    /// reorganizes disk, not the index), so no version moves;
    /// segments appended by an external writer and not yet reloaded
    /// survive untouched (see [`IndexStore::compact`]). Returns the
    /// total number of folded segments.
    pub fn compact(&self) -> Result<usize, MaintenanceError> {
        let mut stores = self.lock_stores();
        let cur = self.snapshot();
        let mut folded = 0;
        for (store, shard) in stores.iter_mut().zip(cur.engine.shards()) {
            let t0 = Instant::now();
            folded += store.compact(shard)?;
            self.telemetry.compact.record(t0.elapsed());
        }
        Ok(folded)
    }

    /// Pick up delta segments appended by another writer (a CLI
    /// `d3l add` or a `d3l watch` process next to a serving replica):
    /// every shard directory holding segments this handle has not
    /// replayed gets them applied incrementally onto a clone of the
    /// live shard, and only those shards are swapped. `None` when the
    /// handle is already at the latest state everywhere.
    ///
    /// Staleness is decided and replayed **under one store lock**,
    /// and the replay re-scans the directory rather than trusting an
    /// earlier inventory: [`IndexStore::replay_newer`] applies
    /// everything above the shard's replayed-through watermark at the
    /// moment it runs. An earlier version scanned first and then
    /// replayed the scanned set, so a writer appending between scan
    /// and replay (or to a shard the scan judged current) was
    /// silently deferred to a later poll — the regression tests
    /// inject exactly that interleaving via
    /// [`EngineHandle::reload_latest_paced`].
    pub fn reload_latest(&self) -> Result<Option<Arc<EngineSnapshot>>, MaintenanceError> {
        self.reload_latest_paced(|| {})
    }

    /// [`EngineHandle::reload_latest`] with a hook that runs after the
    /// reload has begun (store lock held) and before the authoritative
    /// scan-and-replay. The hook is the TOCTOU window of the pre-fix
    /// implementation: segments an external writer appends inside it
    /// must still be observed by this very reload. Exposed for the
    /// mid-reload-append regression tests.
    #[doc(hidden)]
    pub fn reload_latest_paced(
        &self,
        before_replay: impl FnOnce(),
    ) -> Result<Option<Arc<EngineSnapshot>>, MaintenanceError> {
        let mut stores = self.lock_stores();
        before_replay();
        let cur = self.snapshot();
        let mut next = cur.engine.clone();
        // (shard, watermark before replay) — the rollback set: if a
        // later shard's replay fails, no swap happens, so the shards
        // already replayed must rewind their store watermarks or
        // their segments would count as replayed without ever
        // reaching the served engine.
        let mut touched: Vec<(usize, u64)> = Vec::new();
        let mut replay_all = || -> Result<(), MaintenanceError> {
            for (s, store) in stores.iter_mut().enumerate() {
                if !store.has_newer_segments()? {
                    continue;
                }
                // Incremental replay: clone the live shard and apply
                // only the segments above its watermark — no base
                // re-read, and `replay_newer`'s own directory scan
                // (not the staleness check above) decides what gets
                // applied.
                let mut shard = (*cur.engine.shards()[s]).clone();
                let prev = store.replayed_through();
                let t0 = Instant::now();
                store.replay_newer(&mut shard)?;
                self.telemetry.load.record(t0.elapsed());
                next = next.with_shard(s, shard);
                touched.push((s, prev));
            }
            Ok(())
        };
        if let Err(e) = replay_all() {
            for &(s, prev) in &touched {
                stores[s].rewind_replayed_through(prev);
            }
            return Err(e);
        }
        if touched.is_empty() {
            return Ok(None);
        }
        let shards: Vec<usize> = touched.iter().map(|&(s, _)| s).collect();
        Ok(Some(self.swap_many(&cur, next, &shards)))
    }

    /// On-disk footprint: `(base bytes, delta bytes, pending delta
    /// segments)` summed across shards.
    pub fn disk_stats(&self) -> Result<(u64, u64, usize), MaintenanceError> {
        Ok(self
            .shard_disk_stats()?
            .into_iter()
            .fold((0, 0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2)))
    }

    /// Per-shard on-disk footprints, parallel to `engine.shards()`.
    pub fn shard_disk_stats(&self) -> Result<Vec<(u64, u64, usize)>, MaintenanceError> {
        let stores = self.lock_stores();
        let mut out = Vec::with_capacity(stores.len());
        for store in stores.iter() {
            let (base, deltas) = store.disk_bytes()?;
            out.push((base, deltas, store.delta_count()?));
        }
        Ok(out)
    }

    /// Publish `next` as the successor of `prev`, stamping shard
    /// `touched` with the new version.
    fn swap(&self, prev: &EngineSnapshot, next: ShardedD3l, touched: usize) -> Arc<EngineSnapshot> {
        self.swap_many(prev, next, &[touched])
    }

    /// Publish `next` as the successor of `prev` and return the new
    /// snapshot. Callers hold the store lock, so versions move one
    /// writer at a time.
    fn swap_many(
        &self,
        prev: &EngineSnapshot,
        next: ShardedD3l,
        touched: &[usize],
    ) -> Arc<EngineSnapshot> {
        let version = prev.version + 1;
        let mut shard_versions = prev.shard_versions.clone();
        // Untouched shards are byte-identical to the previous
        // snapshot, so their cached footprints carry over; only the
        // rewritten shards are re-walked.
        let mut shard_footprints = prev.shard_footprints.clone();
        for &s in touched {
            shard_versions[s] = version;
            shard_footprints[s] = next.shards()[s].byte_size();
        }
        let footprint = MemoryFootprint::sum(&shard_footprints);
        let swapped = Arc::new(EngineSnapshot {
            version,
            shard_versions,
            engine: next,
            footprint,
            shard_footprints,
        });
        *self
            .current
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = swapped.clone();
        // The version bump just invalidated every cached rendering;
        // drop them eagerly so the byte budget is not held by
        // unreachable entries. (Compaction does not swap: the engine
        // state is unchanged and the cache correctly stays warm.)
        self.cache.purge_stale(swapped.version);
        swapped
    }

    fn read_current(&self) -> std::sync::RwLockReadGuard<'_, Arc<EngineSnapshot>> {
        // A poisoned lock means a panic elsewhere while the guard was
        // held; snapshots are immutable `Arc`s and the swap is a
        // single assignment, so the stored value is always intact.
        self.current
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn lock_stores(&self) -> MutexGuard<'_, Vec<IndexStore>> {
        // Same reasoning: the store handles' bookkeeping is only
        // advanced after a successful durable write.
        self.stores
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D3lConfig;
    use d3l_table::DataLake;

    fn handle(tag: &str) -> (EngineHandle, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("d3l_hotswap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut lake = DataLake::new();
        lake.add(
            Table::from_rows(
                "gp",
                &["Practice", "City"],
                &[vec!["Blackfriars".into(), "Salford".into()]],
            )
            .unwrap(),
        )
        .unwrap();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let store = IndexStore::create(&dir, &d3l).unwrap();
        (EngineHandle::new(store, d3l), dir)
    }

    fn extra_table(name: &str) -> Table {
        Table::from_rows(
            name,
            &["GP", "Location"],
            &[vec!["Blackfriars".into(), "Salford".into()]],
        )
        .unwrap()
    }

    #[test]
    fn mutations_version_and_persist() {
        let (handle, dir) = handle("mut");
        assert_eq!(handle.snapshot().version, 0);

        let (id, snap) = handle.add_table(&extra_table("local_gps")).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.engine.live_table_count(), 2);
        assert_eq!(snap.engine.table_name(id), "local_gps");

        // Old snapshots are unaffected by the swap.
        let before = handle.snapshot();
        let (_, after) = handle.remove_table("local_gps").unwrap();
        assert_eq!(before.version, 1);
        assert_eq!(before.engine.live_table_count(), 2);
        assert_eq!(after.version, 2);
        assert_eq!(after.engine.live_table_count(), 1);

        // Both mutations were persisted as segments; compact folds
        // them without moving the version.
        assert_eq!(handle.disk_stats().unwrap().2, 2);
        assert_eq!(handle.compact().unwrap(), 2);
        assert_eq!(handle.disk_stats().unwrap().2, 0);
        assert_eq!(handle.snapshot().version, 2);

        // A cold start over the directory sees the same final state.
        let reopened = EngineHandle::open(&dir).unwrap();
        assert_eq!(
            reopened.snapshot().engine.shards()[0].to_snapshot_bytes(),
            handle.snapshot().engine.shards()[0].to_snapshot_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_footprints_track_every_swap() {
        let (handle, dir) = handle("footprint");
        let check = |snap: &EngineSnapshot| {
            assert_eq!(snap.footprint, snap.engine.byte_size());
            assert_eq!(snap.shard_footprints, snap.engine.shard_byte_sizes());
            assert_eq!(snap.footprint, MemoryFootprint::sum(&snap.shard_footprints));
        };
        check(&handle.snapshot());

        let (_, after_add) = handle.add_table(&extra_table("local_gps")).unwrap();
        check(&after_add);
        assert!(after_add.footprint.total() > 0);

        let (_, after_remove) = handle.remove_table("local_gps").unwrap();
        check(&after_remove);

        // A cold reopen computes the same accounting from scratch.
        let reopened = EngineHandle::open(&dir).unwrap();
        check(&reopened.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_unknown_names_are_typed_refusals() {
        let (handle, dir) = handle("refuse");
        assert!(matches!(
            handle.add_table(&extra_table("gp")),
            Err(MaintenanceError::DuplicateName(n)) if n == "gp"
        ));
        assert!(matches!(
            handle.remove_table("never_there"),
            Err(MaintenanceError::UnknownTable(n)) if n == "never_there"
        ));
        // Refusals leave no segments and do not bump the version.
        assert_eq!(handle.disk_stats().unwrap().2, 0);
        assert_eq!(handle.snapshot().version, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutations_purge_cached_renderings_compaction_keeps_them() {
        use crate::cache::CacheKey;
        let (handle, dir) = handle("cache");
        let key = CacheKey {
            target: [1, 2],
            k: 10,
            opts: 0,
            version: 0,
        };
        handle.cache().put(key, "rendered".into());
        assert!(handle.cache().get(&key).is_some());

        handle.add_table(&extra_table("t2")).unwrap();
        assert!(
            handle.cache().get(&key).is_none(),
            "swap must purge stale-version entries"
        );
        // Entries keyed at the new version survive compaction: the
        // engine state (and thus every rendering) is unchanged.
        let live = CacheKey { version: 1, ..key };
        handle.cache().put(live, "rendered".into());
        handle.compact().unwrap();
        assert!(handle.cache().get(&live).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_observes_appends_that_race_the_scan() {
        // Regression for the scan-then-replay TOCTOU: a writer
        // appending after the reload began (the pre-fix code had
        // already decided "nothing is stale" by then) must still be
        // observed by this very reload, not deferred to a later poll.
        let (handle, dir) = handle("toctou");
        let snap = handle
            .reload_latest_paced(|| {
                let (mut store, mut engine) = IndexStore::open(&dir).unwrap();
                store
                    .append_add(&mut engine, &extra_table("mid_reload"))
                    .unwrap();
            })
            .unwrap()
            .expect("the mid-reload append must be observed, not deferred");
        assert_eq!(snap.version, 1);
        assert!(snap.engine.name_to_id().contains_key("mid_reload"));
        assert!(handle.reload_latest().unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_reload_observes_appends_to_shards_the_scan_judged_current() {
        // The sharded flavor of the TOCTOU: shard A already has an
        // external segment when the reload begins; mid-reload a
        // writer appends to shard B. The pre-fix code replayed only
        // the scanned-stale set {A}, silently deferring B's
        // acknowledged segment. One reload must pick up both.
        let (handle, dir) = sharded_handle("toctou", 2);
        let cur = handle.snapshot();
        // Two names owned by different shards.
        let mut names = Vec::new();
        for i in 0..64 {
            let name = format!("race_{i}");
            if names.is_empty() || cur.engine.shard_of(&name) != cur.engine.shard_of(names[0]) {
                names.push(Box::leak(name.into_boxed_str()) as &str);
            }
            if names.len() == 2 {
                break;
            }
        }
        let [first, second] = names[..] else {
            panic!("no shard split found")
        };
        let append = |name: &str, id| {
            let owner = cur.engine.shard_of(name);
            let (mut store, mut engine) =
                IndexStore::open(dir.join(shard_dir_name(owner))).unwrap();
            store
                .append_add_at(&mut engine, &extra_table(name), id)
                .unwrap();
        };
        append(first, cur.engine.next_table_id());
        let second_id = TableId(cur.engine.next_table_id().0 + 1);
        let snap = handle
            .reload_latest_paced(|| append(second, second_id))
            .unwrap()
            .expect("must observe");
        assert!(
            snap.engine.name_to_id().contains_key(first),
            "pre-scan append applied"
        );
        assert!(
            snap.engine.name_to_id().contains_key(second),
            "mid-reload append to the other shard applied in the same reload"
        );
        assert_eq!(snap.version, 1, "one reload, one swap");
        assert!(handle.reload_latest().unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_reload_rewinds_watermarks_so_nothing_is_lost() {
        // Shard replay order is shard 0 first; make shard 0's segment
        // valid and shard 1's corrupt, confirm the error, repair, and
        // assert a retry still applies shard 0's segment.
        let (handle, dir) = sharded_handle("rewind", 2);
        let cur = handle.snapshot();
        let mut by_shard: [Option<&str>; 2] = [None, None];
        for i in 0..64 {
            let name = format!("rewind_{i}");
            let owner = cur.engine.shard_of(&name);
            if by_shard[owner].is_none() {
                by_shard[owner] = Some(Box::leak(name.into_boxed_str()));
            }
            if by_shard.iter().all(|n| n.is_some()) {
                break;
            }
        }
        let (zero, one) = (by_shard[0].unwrap(), by_shard[1].unwrap());
        let id0 = cur.engine.next_table_id();
        let id1 = TableId(id0.0 + 1);
        let append = |name: &str, id| {
            let owner = cur.engine.shard_of(name);
            let (mut store, mut engine) =
                IndexStore::open(dir.join(shard_dir_name(owner))).unwrap();
            store
                .append_add_at(&mut engine, &extra_table(name), id)
                .unwrap();
        };
        append(zero, id0);
        append(one, id1);
        // Corrupt shard 1's new segment.
        let seg1 = dir
            .join(shard_dir_name(1))
            .join(d3l_store::layout::delta_file_name(1));
        let good = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, b"garbage").unwrap();
        assert!(handle.reload_latest().is_err(), "corrupt segment surfaces");
        // Repair and retry: shard 0's segment must not have been
        // swallowed by the failed attempt.
        std::fs::write(&seg1, good).unwrap();
        let snap = handle.reload_latest().unwrap().expect("retry succeeds");
        assert!(snap.engine.name_to_id().contains_key(zero));
        assert!(snap.engine.name_to_id().contains_key(one));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_latest_picks_up_external_segments() {
        let (handle, dir) = handle("reload");
        assert!(handle.reload_latest().unwrap().is_none(), "nothing new");

        // A second writer (the CLI next to a server) appends a delta.
        let (mut other_store, mut other_engine) = IndexStore::open(&dir).unwrap();
        other_store
            .append_add(&mut other_engine, &extra_table("late"))
            .unwrap();

        let snap = handle
            .reload_latest()
            .unwrap()
            .expect("new segment must be observed");
        assert_eq!(snap.version, 1);
        assert!(snap.engine.name_to_id().contains_key("late"));
        assert!(handle.reload_latest().unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }

    // ------------------------------------------------ sharded layout

    fn sharded_lake(tables: usize) -> DataLake {
        let mut lake = DataLake::new();
        for t in 0..tables {
            let rows: Vec<Vec<String>> = (0..5)
                .map(|r| {
                    vec![
                        format!("practice_{}_{}", t % 3, r),
                        format!("{}", (t * 13 + r) % 90),
                    ]
                })
                .collect();
            lake.add(
                Table::from_rows(format!("lake_table_{t:02}"), &["name", "count"], &rows).unwrap(),
            )
            .unwrap();
        }
        lake
    }

    fn sharded_handle(tag: &str, shards: usize) -> (EngineHandle, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("d3l_hotswap_sh_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = D3lConfig {
            shards,
            ..D3lConfig::fast()
        };
        let engine = ShardedD3l::index_lake(&sharded_lake(8), cfg);
        let handle = EngineHandle::create(&dir, engine).unwrap();
        (handle, dir)
    }

    /// Every shard's base-snapshot bytes as currently on disk.
    fn disk_shard_bytes(dir: &Path, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|s| std::fs::read(dir.join(shard_dir_name(s)).join(BASE_FILE)).unwrap())
            .collect()
    }

    #[test]
    fn sharded_mutations_touch_only_the_owning_shard() {
        let (handle, dir) = sharded_handle("blast", 3);
        let before = handle.snapshot();
        assert_eq!(before.shard_versions, vec![0, 0, 0]);
        let disk_before = disk_shard_bytes(&dir, 3);

        let table = extra_table("newcomer");
        let owner = before.engine.shard_of("newcomer");
        let (id, after) = handle.add_table(&table).unwrap();
        assert_eq!(id, before.engine.next_table_id());
        assert_eq!(after.engine.table_name(id), "newcomer");
        assert_eq!(after.engine.owner_of(id), Some(owner));

        // Non-owning shards: same Arc (no copy), same version stamp,
        // same bytes on disk.
        let disk_after = disk_shard_bytes(&dir, 3);
        for s in 0..3 {
            if s == owner {
                assert_eq!(after.shard_versions[s], 1, "owner stamped");
                continue;
            }
            assert!(
                Arc::ptr_eq(&before.engine.shards()[s], &after.engine.shards()[s]),
                "shard {s} must be shared, not copied"
            );
            assert_eq!(after.shard_versions[s], 0, "shard {s} stamp must hold");
            assert_eq!(disk_before[s], disk_after[s], "shard {s} bytes must hold");
        }

        // Remove follows the same discipline.
        let victim = "lake_table_03";
        let victim_owner = after.engine.shard_of(victim);
        let (_, removed) = handle.remove_table(victim).unwrap();
        for s in 0..3 {
            if s == victim_owner {
                assert_eq!(removed.shard_versions[s], 2);
            } else {
                assert!(Arc::ptr_eq(
                    &after.engine.shards()[s],
                    &removed.engine.shards()[s]
                ));
                assert_eq!(removed.shard_versions[s], after.shard_versions[s]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_lifecycle_survives_compact_and_reopen() {
        let (handle, dir) = sharded_handle("cycle", 3);
        handle.add_table(&extra_table("added_one")).unwrap();
        handle.remove_table("lake_table_05").unwrap();

        let reopened = EngineHandle::open(&dir).unwrap();
        let live = handle.snapshot();
        let cold = reopened.snapshot();
        assert_eq!(cold.engine.shard_count(), 3);
        for s in 0..3 {
            assert_eq!(
                live.engine.shards()[s].to_snapshot_bytes(),
                cold.engine.shards()[s].to_snapshot_bytes(),
                "shard {s} replay must reproduce the live engine"
            );
        }

        assert!(handle.compact().unwrap() >= 2);
        assert_eq!(handle.disk_stats().unwrap().2, 0);
        let recompacted = EngineHandle::open(&dir).unwrap();
        for s in 0..3 {
            assert_eq!(
                live.engine.shards()[s].to_snapshot_bytes(),
                recompacted.snapshot().engine.shards()[s].to_snapshot_bytes(),
                "shard {s} compacted base must reproduce the live engine"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_reload_picks_up_external_shard_segments() {
        let (handle, dir) = sharded_handle("ext", 2);
        assert!(handle.reload_latest().unwrap().is_none());

        // A second writer appends straight into one shard's store.
        let cur = handle.snapshot();
        let name = "externally_added";
        let owner = cur.engine.shard_of(name);
        let id = cur.engine.next_table_id();
        let (mut store, mut engine) = IndexStore::open(dir.join(shard_dir_name(owner))).unwrap();
        store
            .append_add_at(&mut engine, &extra_table(name), id)
            .unwrap();

        let snap = handle.reload_latest().unwrap().expect("must observe");
        assert!(snap.engine.name_to_id().contains_key(name));
        assert_eq!(snap.engine.owner_of(id), Some(owner));
        for s in 0..2 {
            if s != owner {
                assert!(Arc::ptr_eq(
                    &cur.engine.shards()[s],
                    &snap.engine.shards()[s]
                ));
                assert_eq!(snap.shard_versions[s], 0);
            }
        }
        assert!(handle.reload_latest().unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_a_gapped_shard_set() {
        let (_, dir) = sharded_handle("gap", 3);
        std::fs::remove_dir_all(dir.join(shard_dir_name(1))).unwrap();
        assert!(matches!(
            EngineHandle::open(&dir),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
