//! The partitioned engine: N shards, one lake, monolith-identical
//! answers.
//!
//! [`ShardedD3l`] splits the lake across `D3lConfig::shards` complete
//! [`D3l`] engines. Tables are assigned to shards by a stable
//! fingerprint of the table name, and every shard keeps its slot
//! vector *dense over global table ids* — the ids other shards own are
//! holes (`D3l::push_hole`), so an `AttrRef` read out of any shard's
//! forest is already a global reference and no id translation exists
//! anywhere. The payoff is in maintenance: a mutation clones and
//! rewrites only the owning shard — O(lake/N) work and snapshot bytes
//! — while the other N−1 shards stay byte-for-byte untouched.
//!
//! Queries scatter and gather without approximation:
//!
//! 1. **Candidate generation** runs the *monolith* forest descent over
//!    the shard set via [`d3l_lsh::forest::query_union`] — the union
//!    of the shards' per-tree prefix ranges is exactly the monolith
//!    range, and the widening stop is driven by the global candidate
//!    count, so the candidate sets match the monolith's exactly.
//! 2. **Pairwise scoring** routes each profile/signature lookup to the
//!    owning shard and feeds the shared scoring core
//!    (`pair_distances_resolved`), which never sees index state.
//! 3. **Aggregation** is the shared `stage_aggregate`, which only sees
//!    the scored pair lists.
//!
//! Nothing in the pipeline depends on N, so rankings are
//! **byte-identical at every shard count** (and still at every thread
//! count) — the determinism suite pins both axes at once.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use d3l_embedding::SemanticEmbedder;
use d3l_lsh::forest::{query_union, LshForest};
use d3l_lsh::hash::hash_str;
use d3l_lsh::minhash::MinHashSignature;
use d3l_lsh::randproj::BitSignature;
use d3l_table::{DataLake, Table, TableId};

use crate::config::D3lConfig;
use crate::evidence::Evidence;
use crate::index::{AttrRef, AttrSignatures, D3l, MemoryFootprint};
use crate::profile::AttributeProfile;
use crate::query::{
    pair_distances_resolved, par_map, stage_aggregate, subjects_related_resolved, PreparedTarget,
    QueryOptions, TableMatch,
};

/// The shard that owns a table named `name` in an `n`-shard engine.
/// Stable across processes and runs: FNV-1a of the name, mod `n`.
pub fn shard_of_name(name: &str, n: usize) -> usize {
    debug_assert!(n > 0, "shard count must be positive");
    (hash_str(name) % n as u64) as usize
}

/// An N-shard [`D3l`] engine with monolith-identical query results.
///
/// Shards sit behind `Arc` so the copy-on-write maintenance path
/// ([`crate::hotswap::EngineHandle`]) clones the engine cheaply (N
/// pointer bumps), deep-clones *only* the shard owning the mutated
/// table, and swaps the result in — concurrent readers keep their
/// consistent snapshot and the other shards' memory is shared, not
/// copied.
#[derive(Clone)]
pub struct ShardedD3l {
    shards: Vec<Arc<D3l>>,
}

impl std::fmt::Debug for ShardedD3l {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedD3l")
            .field("shards", &self.shards.len())
            .field("tables", &self.table_count())
            .field("live_tables", &self.live_table_count())
            .finish()
    }
}

impl ShardedD3l {
    // ------------------------------------------------- construction

    /// Index a lake into `cfg.shards` shards with a lexicon-free
    /// embedder.
    pub fn index_lake(lake: &DataLake, cfg: D3lConfig) -> Self {
        let shards = cfg.shards;
        Self::split(D3l::index_lake(lake, cfg), shards)
    }

    /// Index a lake into `cfg.shards` shards with the supplied
    /// word-embedding model.
    pub fn index_lake_with(lake: &DataLake, cfg: D3lConfig, embedder: SemanticEmbedder) -> Self {
        let shards = cfg.shards;
        Self::split(D3l::index_lake_with(lake, cfg, embedder), shards)
    }

    /// Wrap an existing monolithic engine as a one-shard engine.
    pub fn from_monolith(mut d3l: D3l) -> Self {
        d3l.cfg.shards = 1;
        ShardedD3l {
            shards: vec![Arc::new(d3l)],
        }
    }

    /// Partition a monolithic engine into `n` shards. Each shard gets
    /// the slots it owns (by [`shard_of_name`]), holes elsewhere, and
    /// four forests rebuilt from the monolith's stored signatures —
    /// bit-identical to having inserted only the owned attributes.
    /// Removal tombstones follow their name to the owning shard.
    pub fn split(d3l: D3l, n: usize) -> Self {
        assert!(n > 0, "shard count must be positive");
        if n == 1 {
            return Self::from_monolith(d3l);
        }
        let owner: Vec<Option<usize>> = (0..d3l.table_count())
            .map(|i| {
                let id = TableId(i as u32);
                if d3l.is_hole(id) {
                    None
                } else {
                    Some(shard_of_name(&d3l.names[i], n))
                }
            })
            .collect();
        let mut cfg = d3l.cfg.clone();
        cfg.shards = n;
        let shards = (0..n)
            .map(|s| {
                // Dense over global ids up to this shard's last owned
                // slot — shorter vectors mean adds elsewhere never
                // touch this shard's snapshot.
                let slots = owner
                    .iter()
                    .rposition(|&o| o == Some(s))
                    .map_or(0, |i| i + 1);
                let mut shard = D3l {
                    cfg: cfg.clone(),
                    embedder: d3l.embedder.clone(),
                    minhasher: d3l.minhasher.clone(),
                    projector: d3l.projector.clone(),
                    i_n: Self::partition_forest(&d3l.i_n, cfg.num_perm, &cfg, &owner, s),
                    i_v: Self::partition_forest(&d3l.i_v, cfg.num_perm, &cfg, &owner, s),
                    i_f: Self::partition_forest(&d3l.i_f, cfg.num_perm, &cfg, &owner, s),
                    i_e: Self::partition_forest(&d3l.i_e, cfg.embed_bits, &cfg, &owner, s),
                    profiles: Vec::with_capacity(slots),
                    subjects: Vec::with_capacity(slots),
                    names: Vec::with_capacity(slots),
                    arities: Vec::with_capacity(slots),
                    removed: Vec::with_capacity(slots),
                };
                for (i, &slot_owner) in owner.iter().enumerate().take(slots) {
                    if slot_owner == Some(s) {
                        shard.names.push(d3l.names[i].clone());
                        shard.arities.push(d3l.arities[i]);
                        shard.subjects.push(d3l.subjects[i]);
                        shard.profiles.push(d3l.profiles[i].clone());
                        shard.removed.push(d3l.removed[i]);
                    } else {
                        shard.push_hole();
                    }
                }
                Arc::new(shard)
            })
            .collect();
        ShardedD3l { shards }
    }

    /// One shard's slice of a forest: the items whose owning table
    /// maps to shard `s`, rebuilt into a committed forest. Trees sort
    /// a total `(label, id)` order, so the result is independent of
    /// iteration order and identical to incremental insertion.
    fn partition_forest<S: d3l_lsh::banded::Signature + Send + Sync>(
        full: &LshForest<S>,
        sig_len: usize,
        cfg: &D3lConfig,
        owner: &[Option<usize>],
        s: usize,
    ) -> LshForest<S> {
        let items: Vec<(u64, S)> = full
            .ids()
            .filter(|&key| owner[AttrRef::from_key(key).table.index()] == Some(s))
            .map(|key| {
                (
                    key,
                    full.signature(key).expect("forest id without signature"),
                )
            })
            .collect();
        LshForest::build_from(sig_len, cfg.trees, items, cfg.effective_threads())
    }

    /// Assemble an engine from per-shard instances (the loader path:
    /// one [`crate::snapshot::IndexStore`] per `shard-NN/` directory).
    /// Validates that the shards agree on how many of them there are.
    pub fn from_shards(shards: Vec<D3l>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(
                s.cfg.shards,
                shards.len(),
                "shard {i} believes in {} shards, loaded {}",
                s.cfg.shards,
                shards.len()
            );
        }
        ShardedD3l {
            shards: shards.into_iter().map(Arc::new).collect(),
        }
    }

    // -------------------------------------------------- shard access

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines (read-only).
    pub fn shards(&self) -> &[Arc<D3l>] {
        &self.shards
    }

    /// The shard used for target profiling and config access. All
    /// shards share identical hashers and configuration; shard 0 is
    /// the designated representative.
    fn primary(&self) -> &D3l {
        &self.shards[0]
    }

    /// The shard owning table `id`: the one whose slot vector covers
    /// the id with a non-hole (live table or removal tombstone).
    /// `None` for ids no shard has seen.
    pub fn owner_of(&self, id: TableId) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| id.index() < s.table_count() && !s.is_hole(id))
    }

    /// The shard that owns (or would own) a table named `name`.
    pub fn shard_of(&self, name: &str) -> usize {
        shard_of_name(name, self.shards.len())
    }

    /// The global id the next added table receives: one past the
    /// highest slot any shard has allocated.
    pub fn next_table_id(&self) -> TableId {
        TableId(self.table_count() as u32)
    }

    /// Replace one shard (the copy-on-write maintenance path). The
    /// new shard must still agree on the shard count.
    pub fn with_shard(&self, s: usize, shard: D3l) -> Self {
        debug_assert_eq!(shard.cfg.shards, self.shards.len());
        let mut shards = self.shards.clone();
        shards[s] = Arc::new(shard);
        ShardedD3l { shards }
    }

    // ---------------------------------------------------- accessors

    /// Global slot count: one past the highest table id any shard
    /// owns (holes included, exactly like the monolith's count).
    pub fn table_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table_count())
            .max()
            .unwrap_or(0)
    }

    /// Number of tables still serving across all shards.
    pub fn live_table_count(&self) -> usize {
        self.shards.iter().map(|s| s.live_table_count()).sum()
    }

    /// Name of an indexed table (owner-routed; panics for ids no
    /// shard owns, like the monolith's out-of-range indexing).
    pub fn table_name(&self, id: TableId) -> &str {
        let s = self.owner_of(id).expect("table id owned by no shard");
        self.shards[s].table_name(id)
    }

    /// Arity of an indexed table (owner-routed).
    pub fn table_arity(&self, id: TableId) -> usize {
        let s = self.owner_of(id).expect("table id owned by no shard");
        self.shards[s].table_arity(id)
    }

    /// Whether an id is a removal tombstone (or an id inside the
    /// allocated range that no shard owns).
    pub fn is_removed(&self, id: TableId) -> bool {
        if id.index() >= self.table_count() {
            return false;
        }
        match self.owner_of(id) {
            Some(s) => self.shards[s].is_removed(id),
            None => true,
        }
    }

    /// Profile of one attribute (owner-routed).
    pub fn profile(&self, attr: AttrRef) -> &AttributeProfile {
        let s = self.owner_of(attr.table).expect("attr owned by no shard");
        self.shards[s].profile(attr)
    }

    /// Subject attribute of an indexed table, if any (owner-routed).
    pub fn subject_of(&self, id: TableId) -> Option<AttrRef> {
        let s = self.owner_of(id)?;
        self.shards[s].subject_of(id)
    }

    /// The configuration in effect (identical across shards).
    pub fn config(&self) -> &D3lConfig {
        self.primary().config()
    }

    /// Change the query-pipeline worker count on every shard.
    pub fn set_query_threads(&mut self, threads: usize) {
        for shard in &mut self.shards {
            Arc::make_mut(shard).set_query_threads(threads);
        }
    }

    /// Map from table name to id across all shards (highest id wins
    /// for duplicate names, matching the monolith).
    pub fn name_to_id(&self) -> HashMap<&str, TableId> {
        let mut pairs: Vec<(TableId, &str)> = self
            .shards
            .iter()
            .flat_map(|s| s.name_to_id().into_iter().map(|(n, id)| (id, n)))
            .collect();
        pairs.sort_unstable_by_key(|(id, _)| *id);
        pairs.into_iter().map(|(id, n)| (n, id)).collect()
    }

    /// Total index byte footprint across shards.
    pub fn index_byte_size(&self) -> usize {
        self.shards.iter().map(|s| s.index_byte_size()).sum()
    }

    /// Aggregate memory accounting across shards.
    pub fn byte_size(&self) -> MemoryFootprint {
        MemoryFootprint::sum(&self.shard_byte_sizes())
    }

    /// Per-shard memory accounting, for diagnostics and `/stats`.
    pub fn shard_byte_sizes(&self) -> Vec<MemoryFootprint> {
        self.shards.iter().map(|s| s.byte_size()).collect()
    }

    // -------------------------------------------------- query path

    /// Stage 1 entry point; targets are profiled with shard 0's
    /// hashers, which every shard shares.
    pub fn prepare_target(&self, target: &Table) -> PreparedTarget {
        self.primary().prepare_target(target)
    }

    /// Prepare an already-indexed table as a query target
    /// (owner-routed; see [`D3l::prepare_indexed`]).
    pub fn prepare_indexed(&self, id: TableId) -> Option<PreparedTarget> {
        let s = self.owner_of(id)?;
        self.shards[s].prepare_indexed(id)
    }

    /// The k-most related lake tables to `target` with default
    /// options — byte-identical to the monolith's answer.
    pub fn query(&self, target: &Table, k: usize) -> Vec<TableMatch> {
        self.query_with(target, k, &QueryOptions::default())
    }

    /// The k-most related lake tables with explicit options.
    pub fn query_with(&self, target: &Table, k: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        self.query_prepared(&self.prepare_target(target), k, opts)
    }

    /// [`ShardedD3l::query_with`] over an already-prepared target.
    pub fn query_prepared(
        &self,
        prepared: &PreparedTarget,
        k: usize,
        opts: &QueryOptions,
    ) -> Vec<TableMatch> {
        let width = opts
            .lookup_width
            .unwrap_or_else(|| self.config().lookup_width(k));
        let mut all = self.rank_all_prepared(prepared, width, opts);
        all.truncate(k);
        all
    }

    /// Rank every table with at least one related attribute, closest
    /// first.
    pub fn rank_all(&self, target: &Table, width: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        self.rank_all_prepared(&self.prepare_target(target), width, opts)
    }

    /// [`ShardedD3l::rank_all`] over an already-prepared target.
    pub fn rank_all_prepared(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
    ) -> Vec<TableMatch> {
        let threads = self.config().effective_query_threads(opts.threads);
        self.rank_all_inner(prepared, width, opts, threads)
    }

    /// Top-k answers for many targets at once (see
    /// [`D3l::query_batch`]); batched and per-target results are
    /// identical at every shard and thread count.
    pub fn query_batch(&self, targets: &[Table], k: usize) -> Vec<Vec<TableMatch>> {
        let opts = vec![QueryOptions::default(); targets.len()];
        self.query_batch_with(targets, k, &opts)
    }

    /// [`ShardedD3l::query_batch`] with per-target options.
    pub fn query_batch_with(
        &self,
        targets: &[Table],
        k: usize,
        opts: &[QueryOptions],
    ) -> Vec<Vec<TableMatch>> {
        assert_eq!(targets.len(), opts.len(), "one QueryOptions per target");
        let work: Vec<(&Table, &QueryOptions)> = targets.iter().zip(opts).collect();
        let (outer, inner) = self.batch_threads(work.len());
        par_map(&work, outer, |&(target, opt)| {
            let width = opt
                .lookup_width
                .unwrap_or_else(|| self.config().lookup_width(k));
            let prepared = self.prepare_target(target);
            let mut all = self.rank_all_inner(&prepared, width, opt, inner);
            all.truncate(k);
            all
        })
    }

    /// The set of lake tables related to `target` by at least one
    /// evidence type, unioned across shards.
    pub fn related_table_set(&self, target: &Table, width: usize) -> HashSet<TableId> {
        self.related_table_set_prepared(&self.prepare_target(target), width)
    }

    /// [`ShardedD3l::related_table_set`] over a prepared target.
    pub fn related_table_set_prepared(
        &self,
        prepared: &PreparedTarget,
        width: usize,
    ) -> HashSet<TableId> {
        let threads = self.config().effective_query_threads(None);
        let work: Vec<(&AttributeProfile, &AttrSignatures)> =
            prepared.profiles.iter().zip(&prepared.sigs).collect();
        par_map(&work, threads, |&(tp, ts)| {
            self.gather_candidates(tp, ts, width, None)
        })
        .into_iter()
        .flatten()
        .map(|attr| attr.table)
        .collect()
    }

    /// Same thread-budget split as [`D3l::query_batch_with`].
    fn batch_threads(&self, batch_len: usize) -> (usize, usize) {
        let budget = self.config().effective_query_threads(None);
        let outer = budget.min(batch_len.max(1));
        let inner = (budget / outer.max(1)).max(1);
        (outer, inner)
    }

    /// The scatter-gather pipeline over one prepared target: shard-set
    /// candidate generation, owner-routed scoring, shared aggregation.
    fn rank_all_inner(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<TableMatch> {
        let mut timer = crate::trace::StageTimer::start(opts.trace.as_deref());
        let candidates = self.stage_candidates(prepared, width, opts, threads);
        timer.candidates_done();
        let scored = self.stage_score(prepared, &candidates, threads, opts.trace.as_deref());
        timer.score_done();
        let ranked = stage_aggregate(&scored, opts);
        timer.aggregate_done();
        ranked
    }

    /// Stage 1 over the shard set — the monolith's per-attribute
    /// lookup with each forest read replaced by the shard-union
    /// descent.
    fn stage_candidates(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<AttrRef>> {
        let work: Vec<(&AttributeProfile, &AttrSignatures)> =
            prepared.profiles.iter().zip(&prepared.sigs).collect();
        par_map(&work, threads, |&(tp, ts)| {
            let mut cands: Vec<AttrRef> = self
                .gather_candidates(tp, ts, width, opts.evidence)
                .into_iter()
                .filter(|attr| opts.exclude != Some(attr.table))
                .collect();
            cands.sort_unstable_by_key(|a| a.key());
            cands
        })
    }

    /// Look up one target attribute in every shard's indexes at once.
    /// [`query_union`] runs the monolith descent over the union of the
    /// shards' trees, so the result matches a single-forest lookup
    /// over the whole lake exactly — including the candidate-count
    /// widening stop and the fallback scan.
    fn gather_candidates(
        &self,
        tp: &AttributeProfile,
        ts: &AttrSignatures,
        width: usize,
        only: Option<Evidence>,
    ) -> HashSet<AttrRef> {
        let want = |e: Evidence| match only {
            None => true,
            Some(Evidence::Distribution) => matches!(e, Evidence::Name | Evidence::Format),
            Some(x) => x == e,
        };
        let mut out = HashSet::new();
        if want(Evidence::Name) && !tp.qset.is_empty() {
            let forests: Vec<&LshForest<MinHashSignature>> =
                self.shards.iter().map(|s| &s.i_n).collect();
            for h in query_union(&forests, &ts.name, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Format) && !tp.rset.is_empty() {
            let forests: Vec<&LshForest<MinHashSignature>> =
                self.shards.iter().map(|s| &s.i_f).collect();
            for h in query_union(&forests, &ts.format, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Value) && tp.has_text() {
            let forests: Vec<&LshForest<MinHashSignature>> =
                self.shards.iter().map(|s| &s.i_v).collect();
            for h in query_union(&forests, &ts.value, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Embedding) && tp.has_embedding() {
            let forests: Vec<&LshForest<BitSignature>> =
                self.shards.iter().map(|s| &s.i_e).collect();
            for h in query_union(&forests, &ts.embedding, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        out
    }

    /// Stage 2 — the monolith's pairwise scoring with every index
    /// lookup routed to the owning shard. Work lists, iteration
    /// orders and the scoring core are the monolith's, so the scored
    /// pairs are bit-identical.
    fn stage_score(
        &self,
        prepared: &PreparedTarget,
        candidates: &[Vec<AttrRef>],
        threads: usize,
        trace: Option<&crate::trace::QueryTrace>,
    ) -> Vec<Vec<(AttrRef, crate::distance::DistanceVector)>> {
        let guards = self.subject_guards(prepared, candidates, threads);
        let work: Vec<(usize, AttrRef)> = candidates
            .iter()
            .enumerate()
            .flat_map(|(i, cands)| cands.iter().map(move |&attr| (i, attr)))
            .collect();
        let threshold = self.config().threshold;
        // Fallback signatures are seed-derived from the shared config,
        // so one shard's are every shard's.
        let fallbacks = self.shards[0].sig_fallbacks();
        let scored = par_map(&work, threads, |&(i, attr)| {
            let owner = self.owner_of(attr.table).expect("candidate has an owner");
            let shard = &self.shards[owner];
            // Per-pair attribution only when traced: the scoring
            // stage is the one place work belongs to a single shard.
            let start = trace.map(|_| std::time::Instant::now());
            let sp = shard.profile(attr);
            let ss = shard.stored_signatures_ref(attr, &fallbacks);
            let guard_subject = guards.get(&attr.table).copied().unwrap_or(false);
            let dv = pair_distances_resolved(
                &prepared.profiles[i],
                &prepared.sigs[i],
                sp,
                ss,
                guard_subject,
                threshold,
            );
            if let (Some(t), Some(s)) = (trace, start) {
                t.add_shard_ns(owner, s.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            dv
        });
        let mut out: Vec<Vec<(AttrRef, crate::distance::DistanceVector)>> =
            vec![Vec::new(); candidates.len()];
        for (&(i, attr), dv) in work.iter().zip(scored) {
            if dv.has_signal() {
                out[i].push((attr, dv));
            }
        }
        out
    }

    /// Algorithm 2 line 4 precomputation, owner-routed (see
    /// `D3l::subject_guards`).
    fn subject_guards(
        &self,
        prepared: &PreparedTarget,
        candidates: &[Vec<AttrRef>],
        threads: usize,
    ) -> HashMap<TableId, bool> {
        let mut tables: std::collections::BTreeSet<TableId> = Default::default();
        for (i, cands) in candidates.iter().enumerate() {
            if !prepared.profiles[i].is_numeric {
                continue;
            }
            for attr in cands {
                if self.profile(*attr).is_numeric {
                    tables.insert(attr.table);
                }
            }
        }
        let threshold = self.config().threshold;
        let fallbacks = self.shards[0].sig_fallbacks();
        let tables: Vec<TableId> = tables.into_iter().collect();
        let guards = par_map(&tables, threads, |&t| {
            let shard = &self.shards[self.owner_of(t).expect("candidate has an owner")];
            let ss = shard
                .subject_of(t)
                .map(|s_attr| shard.stored_signatures_ref(s_attr, &fallbacks));
            subjects_related_resolved(prepared, ss, threshold)
        });
        tables.into_iter().zip(guards).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3l_table::Table;

    fn lake(tables: usize) -> DataLake {
        let mut lake = DataLake::new();
        for t in 0..tables {
            let name = format!("table_{t:02}");
            let rows: Vec<Vec<String>> = (0..6)
                .map(|r| {
                    vec![
                        format!("entity_{}_{}", t % 4, r),
                        format!("{}", (t * 17 + r * 3) % 100),
                        format!("C{:03}-{}", (t + r) % 50, r % 5),
                    ]
                })
                .collect();
            lake.add(Table::from_rows(&name, &["name", "count", "code"], &rows).unwrap())
                .unwrap();
        }
        lake
    }

    fn cfg() -> D3lConfig {
        D3lConfig {
            index_threads: 2,
            query_threads: 2,
            ..D3lConfig::fast()
        }
    }

    fn assert_matches_identical(a: &[TableMatch], b: &[TableMatch]) {
        assert_eq!(a.len(), b.len(), "ranking lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            for (dx, dy) in x.vector.0.iter().zip(&y.vector.0) {
                assert_eq!(dx.to_bits(), dy.to_bits());
            }
            assert_eq!(x.alignments.len(), y.alignments.len());
            for (ax, ay) in x.alignments.iter().zip(&y.alignments) {
                assert_eq!(ax.target_column, ay.target_column);
                assert_eq!(ax.source, ay.source);
                for (dx, dy) in ax.distances.0.iter().zip(&ay.distances.0) {
                    assert_eq!(dx.to_bits(), dy.to_bits());
                }
            }
        }
    }

    #[test]
    fn every_shard_count_matches_the_monolith() {
        let lake = lake(12);
        let mono = D3l::index_lake(&lake, cfg());
        let target = lake.table(TableId(3)).clone();
        let expect = mono.query(&target, 6);
        let expect_all = mono.rank_all(&target, 30, &QueryOptions::default());
        for n in [1usize, 2, 3, 8] {
            let sharded = ShardedD3l::split(mono.clone(), n);
            assert_eq!(sharded.shard_count(), n);
            assert_eq!(sharded.table_count(), mono.table_count());
            assert_eq!(sharded.live_table_count(), mono.live_table_count());
            assert_matches_identical(&expect, &sharded.query(&target, 6));
            assert_matches_identical(
                &expect_all,
                &sharded.rank_all(&target, 30, &QueryOptions::default()),
            );
            assert_eq!(
                mono.related_table_set(&target, 30),
                sharded.related_table_set(&target, 30)
            );
        }
    }

    #[test]
    fn shard_accessors_agree_with_the_monolith() {
        let lake = lake(9);
        let mono = D3l::index_lake(&lake, cfg());
        let sharded = ShardedD3l::split(mono.clone(), 4);
        for i in 0..mono.table_count() {
            let id = TableId(i as u32);
            assert_eq!(sharded.table_name(id), mono.table_name(id));
            assert_eq!(sharded.table_arity(id), mono.table_arity(id));
            assert_eq!(sharded.is_removed(id), mono.is_removed(id));
            assert_eq!(sharded.subject_of(id), mono.subject_of(id));
            let owner = sharded.owner_of(id).unwrap();
            assert_eq!(owner, sharded.shard_of(mono.table_name(id)));
        }
        assert_eq!(sharded.name_to_id(), mono.name_to_id());
        assert_eq!(sharded.index_byte_size(), {
            let sizes = sharded.shard_byte_sizes();
            sizes
                .iter()
                .map(|f| f.total() - f.profile_bytes)
                .sum::<usize>()
        });
    }

    #[test]
    fn tombstones_follow_their_name_to_the_owning_shard() {
        let lake = lake(10);
        let mut mono = D3l::index_lake(&lake, cfg());
        let victim = TableId(4);
        let victim_name = mono.table_name(victim).to_string();
        assert!(mono.remove_table(victim));
        let sharded = ShardedD3l::split(mono.clone(), 3);
        let owner = sharded.owner_of(victim).expect("tombstone keeps an owner");
        assert_eq!(owner, sharded.shard_of(&victim_name));
        assert!(sharded.is_removed(victim));
        assert_eq!(sharded.live_table_count(), mono.live_table_count());
        let target = lake.table(TableId(1)).clone();
        assert_matches_identical(&mono.query(&target, 5), &sharded.query(&target, 5));
    }

    #[test]
    fn batch_queries_match_per_target_queries_at_every_shard_count() {
        let lake = lake(8);
        let mono = D3l::index_lake(&lake, cfg());
        let targets: Vec<Table> = (0..3).map(|i| lake.table(TableId(i)).clone()).collect();
        let expect = mono.query_batch(&targets, 4);
        for n in [2usize, 5] {
            let sharded = ShardedD3l::split(mono.clone(), n);
            let got = sharded.query_batch(&targets, 4);
            assert_eq!(got.len(), expect.len());
            for (e, g) in expect.iter().zip(&got) {
                assert_matches_identical(e, g);
            }
        }
    }

    #[test]
    fn with_shard_shares_untouched_shards() {
        let lake = lake(6);
        let sharded = ShardedD3l::split(D3l::index_lake(&lake, cfg()), 3);
        let replacement = (*sharded.shards()[1]).clone();
        let swapped = sharded.with_shard(1, replacement);
        assert!(Arc::ptr_eq(&sharded.shards()[0], &swapped.shards()[0]));
        assert!(Arc::ptr_eq(&sharded.shards()[2], &swapped.shards()[2]));
        assert!(!Arc::ptr_eq(&sharded.shards()[1], &swapped.shards()[1]));
    }
}
