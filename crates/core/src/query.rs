//! Top-k discovery queries (§III-D).
//!
//! Given a target table, each target attribute is looked up in the
//! four LSH Forests; candidate attributes get a full five-distance
//! vector (Algorithm 2 guards the numeric KS case); candidates are
//! grouped by source table, aggregated column-wise with CCDF weights
//! (Eq. 1–2) and collapsed to a scalar by the weighted Euclidean norm
//! (Eq. 3). Tables are returned closest-first.

use std::collections::{HashMap, HashSet};

use d3l_features::ks;
use d3l_table::{Table, TableId};

use crate::distance::{estimated_cosine_distance, estimated_jaccard_distance, DistanceVector};
use crate::evidence::Evidence;
use crate::index::{AttrRef, AttrSignatures, D3l};
use crate::profile::AttributeProfile;
use crate::weights::{aggregate_evidence, ccdf_weight, EvidenceWeights};

/// One aligned attribute pair within a [`TableMatch`].
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Target attribute (column index in the query table).
    pub target_column: usize,
    /// The aligned source attribute.
    pub source: AttrRef,
    /// The five distances of the pair.
    pub distances: DistanceVector,
}

/// One ranked source table.
#[derive(Debug, Clone)]
pub struct TableMatch {
    /// The source table.
    pub table: TableId,
    /// Eq. 3 combined distance (or the single evidence's Eq. 1 value
    /// in single-evidence mode). Smaller is more related.
    pub distance: f64,
    /// The Eq. 1 per-evidence distance vector of the table pair.
    pub vector: DistanceVector,
    /// Best aligned source attribute per covered target attribute.
    pub alignments: Vec<Alignment>,
}

impl TableMatch {
    /// Target columns covered by at least one alignment.
    pub fn covered_targets(&self) -> HashSet<usize> {
        self.alignments.iter().map(|a| a.target_column).collect()
    }
}

/// Query-time options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Exclude one lake table (used when the target itself is a lake
    /// member, as in the benchmark evaluation).
    pub exclude: Option<TableId>,
    /// Rank by a single evidence type (Experiment 1) instead of the
    /// Eq. 3 aggregate.
    pub evidence: Option<Evidence>,
    /// Evidence weights for Eq. 3; `None` uses the trained defaults.
    pub weights: Option<EvidenceWeights>,
    /// Override the per-attribute lookup width.
    pub lookup_width: Option<usize>,
}

impl D3l {
    /// The k-most related lake tables to `target` with default
    /// options.
    pub fn query(&self, target: &Table, k: usize) -> Vec<TableMatch> {
        self.query_with(target, k, &QueryOptions::default())
    }

    /// The k-most related lake tables with explicit options.
    pub fn query_with(&self, target: &Table, k: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        let width = opts
            .lookup_width
            .unwrap_or_else(|| self.cfg.lookup_width(k));
        let mut all = self.rank_all(target, width, opts);
        all.truncate(k);
        all
    }

    /// Rank *every* table with at least one related attribute,
    /// closest first. `width` is the per-attribute, per-index lookup
    /// size.
    pub fn rank_all(&self, target: &Table, width: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        let (t_profiles, t_sigs) = self.profile_and_sign(target);
        let t_subject = d3l_ml::subject_attribute(target);

        // ---- Candidate gathering + per-pair distance vectors ------
        // per target attribute: candidate attr → distance vector
        let mut per_attr: Vec<HashMap<AttrRef, DistanceVector>> =
            vec![HashMap::new(); t_profiles.len()];
        // Cache of the Algorithm-2 subject guard per candidate table.
        let mut subject_guard: HashMap<TableId, bool> = HashMap::new();

        for (i, (tp, ts)) in t_profiles.iter().zip(&t_sigs).enumerate() {
            let candidates = self.gather_candidates(tp, ts, width, opts.evidence);
            for attr in candidates {
                if opts.exclude == Some(attr.table) {
                    continue;
                }
                let dv = self.pair_distances(
                    tp,
                    ts,
                    attr,
                    target,
                    t_subject,
                    &t_sigs,
                    &mut subject_guard,
                );
                if dv.has_signal() {
                    per_attr[i].insert(attr, dv);
                }
            }
        }

        // ---- Distance populations R_t per target attribute --------
        let populations: Vec<[Vec<f64>; 5]> = per_attr
            .iter()
            .map(|cands| {
                let mut pops: [Vec<f64>; 5] = Default::default();
                for dv in cands.values() {
                    for (t, pop) in pops.iter_mut().enumerate() {
                        if dv.0[t] < 1.0 {
                            pop.push(dv.0[t]);
                        }
                    }
                }
                pops
            })
            .collect();

        // ---- Group by table: best pair per target attribute -------
        let pick = |dv: &DistanceVector| match opts.evidence {
            Some(e) => dv.get(e),
            None => dv.mean(),
        };
        let mut by_table: HashMap<TableId, Vec<Alignment>> = HashMap::new();
        for (i, cands) in per_attr.iter().enumerate() {
            let mut best: HashMap<TableId, (AttrRef, DistanceVector)> = HashMap::new();
            for (&attr, dv) in cands {
                match best.get(&attr.table) {
                    Some((_, cur)) if pick(cur) <= pick(dv) => {}
                    _ => {
                        best.insert(attr.table, (attr, *dv));
                    }
                }
            }
            for (table, (attr, dv)) in best {
                by_table.entry(table).or_default().push(Alignment {
                    target_column: i,
                    source: attr,
                    distances: dv,
                });
            }
        }

        // ---- Eq. 1 + Eq. 3 per table -------------------------------
        let weights = opts.weights.unwrap_or_default();
        let mut matches: Vec<TableMatch> = by_table
            .into_iter()
            .map(|(table, mut alignments)| {
                alignments.sort_by_key(|a| (a.target_column, a.source));
                let mut vector = DistanceVector::max_distant();
                for e in Evidence::ALL {
                    let t = e.index();
                    let pairs: Vec<(f64, f64)> = alignments
                        .iter()
                        .filter(|a| a.distances.0[t] < 1.0)
                        .map(|a| {
                            let d = a.distances.0[t];
                            (d, ccdf_weight(d, &populations[a.target_column][t]))
                        })
                        .collect();
                    vector.0[t] = aggregate_evidence(&pairs);
                }
                let distance = match opts.evidence {
                    Some(e) => vector.get(e),
                    None => weights.combined_distance(&vector),
                };
                TableMatch {
                    table,
                    distance,
                    vector,
                    alignments,
                }
            })
            .collect();

        matches.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.table.cmp(&b.table))
        });
        matches
    }

    /// The set of lake tables related to `target` by at least one
    /// evidence type — `I*.lookup(T)` in Algorithms 2 and 3.
    pub fn related_table_set(&self, target: &Table, width: usize) -> HashSet<TableId> {
        let (t_profiles, t_sigs) = self.profile_and_sign(target);
        let mut out = HashSet::new();
        for (tp, ts) in t_profiles.iter().zip(&t_sigs) {
            for attr in self.gather_candidates(tp, ts, width, None) {
                out.insert(attr.table);
            }
        }
        out
    }

    /// Look up one target attribute in the indexes (restricted to one
    /// evidence type when `only` is set; `Distribution` uses the N/F
    /// indexes as its blocking mechanism, mirroring Algorithm 2).
    fn gather_candidates(
        &self,
        tp: &AttributeProfile,
        ts: &AttrSignatures,
        width: usize,
        only: Option<Evidence>,
    ) -> HashSet<AttrRef> {
        let mut out = HashSet::new();
        let want = |e: Evidence| match only {
            None => true,
            Some(Evidence::Distribution) => matches!(e, Evidence::Name | Evidence::Format),
            Some(x) => x == e,
        };
        if want(Evidence::Name) && !tp.qset.is_empty() {
            for h in self.i_n.query_built(&ts.name, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Format) && !tp.rset.is_empty() {
            for h in self.i_f.query_built(&ts.format, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Value) && tp.has_text() {
            for h in self.i_v.query_built(&ts.value, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Embedding) && tp.has_embedding() {
            for h in self.i_e.query_built(&ts.embedding, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        out
    }

    /// The five estimated distances of a (target attr, lake attr)
    /// pair, with Algorithm 2 deciding whether KS is computed.
    #[allow(clippy::too_many_arguments)]
    fn pair_distances(
        &self,
        tp: &AttributeProfile,
        ts: &AttrSignatures,
        attr: AttrRef,
        target: &Table,
        t_subject: Option<usize>,
        t_sigs: &[AttrSignatures],
        subject_guard: &mut HashMap<TableId, bool>,
    ) -> DistanceVector {
        let sp = self.profile(attr);
        let ss = self.stored_signatures(attr);

        let d_n =
            estimated_jaccard_distance(&ts.name, &ss.name, tp.qset.is_empty(), sp.qset.is_empty());
        let d_v = estimated_jaccard_distance(&ts.value, &ss.value, !tp.has_text(), !sp.has_text());
        let d_f = estimated_jaccard_distance(
            &ts.format,
            &ss.format,
            tp.rset.is_empty(),
            sp.rset.is_empty(),
        );
        let d_e = estimated_cosine_distance(
            &ts.embedding,
            &ss.embedding,
            !tp.has_embedding(),
            !sp.has_embedding(),
        );

        // Algorithm 2: only both-numeric pairs get a KS measurement,
        // and only when blocked-in by existing evidence.
        let d_d = if tp.is_numeric && sp.is_numeric {
            let guard_subject = *subject_guard
                .entry(attr.table)
                .or_insert_with(|| self.subjects_related(target, t_subject, t_sigs, attr.table));
            let guard_name = 1.0 - d_n >= self.cfg.threshold;
            let guard_format = 1.0 - d_f >= self.cfg.threshold;
            if guard_subject || guard_name || guard_format {
                ks::ks_statistic_presorted(&tp.numeric_extent, &sp.numeric_extent)
            } else {
                1.0
            }
        } else {
            1.0
        };

        DistanceVector([d_n, d_v, d_f, d_e, d_d])
    }

    /// Algorithm 2 line 4: are the subject attributes of the target
    /// and of lake table `s_table` related in any index
    /// (`i' ∈ I*.lookup(i)`)?
    fn subjects_related(
        &self,
        target: &Table,
        t_subject: Option<usize>,
        t_sigs: &[AttrSignatures],
        s_table: TableId,
    ) -> bool {
        let (Some(ti), Some(s_attr)) = (t_subject, self.subject_of(s_table)) else {
            return false;
        };
        let tp_cols = target.columns();
        if ti >= tp_cols.len() {
            return false;
        }
        let ts = &t_sigs[ti];
        let ss = self.stored_signatures(s_attr);
        let thr = self.cfg.threshold;
        ts.name.jaccard(&ss.name) >= thr
            || ts.value.jaccard(&ss.value) >= thr
            || ts.format.jaccard(&ss.format) >= thr
            || ts.embedding.cosine(&ss.embedding) >= thr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D3lConfig;
    use d3l_table::DataLake;

    /// The Figure 1 scenario plus an unrelated decoy table.
    fn lake() -> DataLake {
        let mut lake = DataLake::new();
        lake.add(
            Table::from_rows(
                "s1_gp_practices",
                &["Practice Name", "Address", "City", "Postcode", "Patients"],
                &[
                    vec![
                        "Dr E Cullen".into(),
                        "51 Botanic Av".into(),
                        "Belfast".into(),
                        "BT7 1JL".into(),
                        "1202".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "1a Chapel St".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "3572".into(),
                    ],
                    vec![
                        "Radclife".into(),
                        "69 Church St".into(),
                        "Manchester".into(),
                        "M26 2SP".into(),
                        "2210".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "s2_gp_funding",
                &["Practice", "City", "Postcode", "Payment"],
                &[
                    vec![
                        "The London Clinic".into(),
                        "London".into(),
                        "W1G 6BW".into(),
                        "73648".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "15530".into(),
                    ],
                    vec![
                        "Radclife".into(),
                        "Manchester".into(),
                        "M26 2SP".into(),
                        "20110".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "decoy_planets",
                &["Planet", "Mass", "Moons"],
                &[
                    vec!["Jupiter".into(), "1.898e27".into(), "95".into()],
                    vec!["Saturn".into(), "5.683e26".into(), "146".into()],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake
    }

    fn target() -> Table {
        Table::from_rows(
            "target_gps",
            &["Practice", "Street", "City", "Postcode", "Hours"],
            &[
                vec![
                    "Radclife".into(),
                    "69 Church St".into(),
                    "Manchester".into(),
                    "M26 2SP".into(),
                    "07:00-20:00".into(),
                ],
                vec![
                    "Bolton Medical".into(),
                    "21 Rupert St".into(),
                    "Bolton".into(),
                    "BL3 6PY".into(),
                    "08:00-16:00".into(),
                ],
                vec![
                    "Blackfriars".into(),
                    "1a Chapel St".into(),
                    "Salford".into(),
                    "M3 6AF".into(),
                    "08:00-18:00".into(),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn related_tables_rank_above_decoys() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.query(&target(), 3);
        assert!(matches.len() >= 2);
        let names: Vec<&str> = matches.iter().map(|m| d3l.table_name(m.table)).collect();
        assert!(
            names[0].starts_with("s1") || names[0].starts_with("s2"),
            "{names:?}"
        );
        assert!(
            names[1].starts_with("s1") || names[1].starts_with("s2"),
            "{names:?}"
        );
        if let Some(decoy) = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "decoy_planets")
        {
            let best = matches[0].distance;
            assert!(
                decoy.distance > best,
                "decoy must rank below related tables"
            );
        }
        // Distances ascend.
        for w in matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn alignments_cover_shared_attributes() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.query(&target(), 2);
        let s2 = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "s2_gp_funding")
            .expect("s2 must be returned");
        // Practice, City, Postcode target columns (0, 2, 3) should be
        // covered.
        let covered = s2.covered_targets();
        assert!(covered.contains(&0), "Practice covered: {covered:?}");
        assert!(covered.contains(&2), "City covered: {covered:?}");
        assert!(covered.contains(&3), "Postcode covered: {covered:?}");
    }

    #[test]
    fn exclude_removes_self_matches() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let t = lake().table_by_name("s1_gp_practices").unwrap().clone();
        let opts = QueryOptions {
            exclude: Some(TableId(0)),
            ..Default::default()
        };
        let matches = d3l.query_with(&t, 3, &opts);
        assert!(matches.iter().all(|m| m.table != TableId(0)));
    }

    #[test]
    fn single_evidence_mode_ranks_by_that_evidence() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let opts = QueryOptions {
            evidence: Some(Evidence::Name),
            ..Default::default()
        };
        let matches = d3l.query_with(&target(), 3, &opts);
        for m in &matches {
            assert!((m.distance - m.vector.get(Evidence::Name)).abs() < 1e-12);
        }
    }

    #[test]
    fn related_table_set_includes_sources() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let related = d3l.related_table_set(&target(), 50);
        assert!(related.contains(&TableId(0)));
        assert!(related.contains(&TableId(1)));
    }

    #[test]
    fn numeric_ks_guard_blocks_unrelated_tables() {
        // Patients (s1) vs Moons (decoy): both numeric, but no name,
        // format, or subject evidence links the pair's tables, so D
        // must stay at 1 for the decoy's numeric column.
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.rank_all(&target(), 50, &QueryOptions::default());
        if let Some(decoy) = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "decoy_planets")
        {
            assert!(
                (decoy.vector.get(Evidence::Distribution) - 1.0).abs() < 1e-9,
                "KS must be guarded off for the decoy"
            );
        }
    }

    #[test]
    fn query_zero_k() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        assert!(d3l.query(&target(), 0).is_empty());
    }
}
