//! Top-k discovery queries (§III-D) — an explicit three-stage
//! pipeline.
//!
//! Given a target table, the query path runs:
//!
//! 1. **Candidate generation** — each target attribute is profiled
//!    once into a [`PreparedTarget`] and looked up in the four LSH
//!    Forests; per-attribute candidate sets are sorted by
//!    [`AttrRef::key`] so later stages iterate them in a fixed order.
//! 2. **Pairwise evidence scoring** — every (target attribute,
//!    candidate attribute) pair gets a full five-distance vector
//!    (Algorithm 2 guards the numeric KS case with a precomputed
//!    per-table subject guard).
//! 3. **CCDF-weighted aggregation** — candidates are grouped by
//!    source table, aggregated column-wise with CCDF weights
//!    (Eq. 1–2) and collapsed to a scalar by the weighted Euclidean
//!    norm (Eq. 3). Tables are returned closest-first.
//!
//! Stages 1 and 2 fan out over `std::thread::scope` workers
//! (`D3lConfig::query_threads`, overridable per query via
//! [`QueryOptions::threads`] and globally via the `D3L_QUERY_THREADS`
//! environment variable); [`D3l::query_batch`] additionally fans out
//! over targets. Work is split into contiguous chunks reassembled in
//! input order and every reduction runs over key-sorted data, so
//! results are **byte-identical at every thread count**.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use d3l_features::ks;
use d3l_table::{Table, TableId};

use crate::distance::{
    estimated_cosine_distance_words, estimated_jaccard_distance_words, DistanceVector,
};
use crate::evidence::Evidence;
use crate::index::{AttrRef, AttrSignatures, AttrSigsRef, D3l, SigFallbacks};
use crate::profile::AttributeProfile;
use crate::weights::{aggregate_evidence, ccdf_weight, EvidenceWeights};

/// One aligned attribute pair within a [`TableMatch`].
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Target attribute (column index in the query table).
    pub target_column: usize,
    /// The aligned source attribute.
    pub source: AttrRef,
    /// The five distances of the pair.
    pub distances: DistanceVector,
}

/// One ranked source table.
#[derive(Debug, Clone)]
pub struct TableMatch {
    /// The source table.
    pub table: TableId,
    /// Eq. 3 combined distance (or the single evidence's Eq. 1 value
    /// in single-evidence mode). Smaller is more related.
    pub distance: f64,
    /// The Eq. 1 per-evidence distance vector of the table pair.
    pub vector: DistanceVector,
    /// Best aligned source attribute per covered target attribute.
    pub alignments: Vec<Alignment>,
}

impl TableMatch {
    /// Target columns covered by at least one alignment.
    pub fn covered_targets(&self) -> HashSet<usize> {
        self.alignments.iter().map(|a| a.target_column).collect()
    }
}

/// Query-time options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Exclude one lake table (used when the target itself is a lake
    /// member, as in the benchmark evaluation).
    pub exclude: Option<TableId>,
    /// Rank by a single evidence type (Experiment 1) instead of the
    /// Eq. 3 aggregate.
    pub evidence: Option<Evidence>,
    /// Evidence weights for Eq. 3; `None` uses the trained defaults.
    pub weights: Option<EvidenceWeights>,
    /// Override the per-attribute lookup width.
    pub lookup_width: Option<usize>,
    /// Per-query worker-thread override (`None` = the
    /// `D3L_QUERY_THREADS` env var, then the config's
    /// `query_threads`; `Some(0)` = all available CPUs). Ignored by
    /// the batch APIs, which split the config/env budget across
    /// targets themselves. Thread count never changes results, only
    /// latency.
    pub threads: Option<usize>,
    /// Optional stage-timing sink (see [`crate::trace`]). Like
    /// `threads`, tracing never affects results — it is excluded from
    /// [`crate::options_fingerprint`] so traced and untraced runs
    /// share cache entries — and when `None` the pipeline reads no
    /// clocks at all.
    pub trace: Option<std::sync::Arc<crate::trace::QueryTrace>>,
}

/// A target profiled and signed against one index's hashers — the
/// output of the pipeline's first stage.
///
/// Profiling a target (q-gram, token, pattern and embedding
/// extraction plus four signatures per attribute) dominates the cost
/// of small queries, so callers that query the same target repeatedly
/// — `rank_all` plus `related_table_set` in the join workload, or the
/// evaluation loop's many `k` values — should prepare once with
/// [`D3l::prepare_target`] and pass the result to the `*_prepared`
/// variants. A `PreparedTarget` is only meaningful for the `D3l`
/// instance that produced it (signatures are bound to its hashers).
pub struct PreparedTarget {
    pub(crate) profiles: Vec<AttributeProfile>,
    pub(crate) sigs: Vec<AttrSignatures>,
    pub(crate) subject: Option<usize>,
}

impl PreparedTarget {
    /// Number of target attributes.
    pub fn arity(&self) -> usize {
        self.profiles.len()
    }
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. Work is split into contiguous chunks whose
/// results are reassembled in spawn order, so the output — and every
/// float reduction downstream of it — is independent of the thread
/// count.
pub(crate) fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for batch in items.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || batch.iter().map(f).collect::<Vec<R>>()));
        }
        for h in handles {
            out.extend(h.join().expect("query worker panicked"));
        }
    });
    out
}

/// Stage 3 — CCDF-weighted aggregation (Eq. 1–3): build the distance
/// populations `R_t`, keep the best pair per (source table, target
/// attribute), aggregate column-wise and collapse to the ranking.
/// Sequential; all grouping uses ordered maps over stage 2's sorted
/// candidate lists.
///
/// A free function reading no index state: it sees only the scored
/// pair lists, so the sharded engine feeds it the gathered pairs from
/// every shard and gets the monolith's ranking by construction.
pub(crate) fn stage_aggregate(
    scored: &[Vec<(AttrRef, DistanceVector)>],
    opts: &QueryOptions,
) -> Vec<TableMatch> {
    // ---- Distance populations R_t per target attribute --------
    let populations: Vec<[Vec<f64>; 5]> = scored
        .iter()
        .map(|cands| {
            let mut pops: [Vec<f64>; 5] = Default::default();
            for (_, dv) in cands {
                for (t, pop) in pops.iter_mut().enumerate() {
                    if dv.0[t] < 1.0 {
                        pop.push(dv.0[t]);
                    }
                }
            }
            pops
        })
        .collect();

    // ---- Group by table: best pair per target attribute -------
    let pick = |dv: &DistanceVector| match opts.evidence {
        Some(e) => dv.get(e),
        None => dv.mean(),
    };
    let mut by_table: BTreeMap<TableId, Vec<Alignment>> = BTreeMap::new();
    for (i, cands) in scored.iter().enumerate() {
        let mut best: BTreeMap<TableId, (AttrRef, DistanceVector)> = BTreeMap::new();
        // Candidates arrive sorted by key, so ties keep the
        // lowest-key attribute deterministically.
        for &(attr, dv) in cands {
            match best.get(&attr.table) {
                Some((_, cur)) if pick(cur) <= pick(&dv) => {}
                _ => {
                    best.insert(attr.table, (attr, dv));
                }
            }
        }
        for (table, (attr, dv)) in best {
            by_table.entry(table).or_default().push(Alignment {
                target_column: i,
                source: attr,
                distances: dv,
            });
        }
    }

    // ---- Eq. 1 + Eq. 3 per table -------------------------------
    let weights = opts.weights.unwrap_or_default();
    let mut matches: Vec<TableMatch> = by_table
        .into_iter()
        .map(|(table, mut alignments)| {
            alignments.sort_by_key(|a| (a.target_column, a.source));
            let mut vector = DistanceVector::max_distant();
            for e in Evidence::ALL {
                let t = e.index();
                let pairs: Vec<(f64, f64)> = alignments
                    .iter()
                    .filter(|a| a.distances.0[t] < 1.0)
                    .map(|a| {
                        let d = a.distances.0[t];
                        (d, ccdf_weight(d, &populations[a.target_column][t]))
                    })
                    .collect();
                vector.0[t] = aggregate_evidence(&pairs);
            }
            let distance = match opts.evidence {
                Some(e) => vector.get(e),
                None => weights.combined_distance(&vector),
            };
            TableMatch {
                table,
                distance,
                vector,
                alignments,
            }
        })
        .collect();

    matches.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.table.cmp(&b.table))
    });
    matches
}

/// The five estimated distances of a (target attr, lake attr) pair
/// with the lake side already resolved — Algorithm 2 decides whether
/// KS is computed. The resolution step (profile + stored-signature
/// lookup by [`AttrRef`]) is the only part of pairwise scoring that
/// touches index state, so both the monolith and the sharded engine
/// route lookups their own way and share this scoring core.
pub(crate) fn pair_distances_resolved(
    tp: &AttributeProfile,
    ts: &AttrSignatures,
    sp: &AttributeProfile,
    ss: AttrSigsRef<'_>,
    guard_subject: bool,
    threshold: f64,
) -> DistanceVector {
    let d_n =
        estimated_jaccard_distance_words(&ts.name, ss.name, tp.qset.is_empty(), sp.qset.is_empty());
    let d_v = estimated_jaccard_distance_words(&ts.value, ss.value, !tp.has_text(), !sp.has_text());
    let d_f = estimated_jaccard_distance_words(
        &ts.format,
        ss.format,
        tp.rset.is_empty(),
        sp.rset.is_empty(),
    );
    let d_e = estimated_cosine_distance_words(
        &ts.embedding,
        ss.embedding,
        !tp.has_embedding(),
        !sp.has_embedding(),
    );

    // Algorithm 2: only both-numeric pairs get a KS measurement,
    // and only when blocked-in by existing evidence.
    let d_d = if tp.is_numeric && sp.is_numeric {
        let guard_name = 1.0 - d_n >= threshold;
        let guard_format = 1.0 - d_f >= threshold;
        if guard_subject || guard_name || guard_format {
            ks::ks_statistic_presorted(&tp.numeric_extent, &sp.numeric_extent)
        } else {
            1.0
        }
    } else {
        1.0
    };

    DistanceVector([d_n, d_v, d_f, d_e, d_d])
}

/// Algorithm 2 line 4 with the lake subject's signatures already
/// resolved: are the subject attributes of the target and of a lake
/// table related in any index (`i' ∈ I*.lookup(i)`)? `ss` is `None`
/// when the lake table has no subject attribute.
pub(crate) fn subjects_related_resolved(
    prepared: &PreparedTarget,
    ss: Option<AttrSigsRef<'_>>,
    threshold: f64,
) -> bool {
    let (Some(ti), Some(ss)) = (prepared.subject, ss) else {
        return false;
    };
    if ti >= prepared.sigs.len() {
        return false;
    }
    let ts = &prepared.sigs[ti];
    ts.name.jaccard_words(ss.name) >= threshold
        || ts.value.jaccard_words(ss.value) >= threshold
        || ts.format.jaccard_words(ss.format) >= threshold
        || ts.embedding.cosine_words(ss.embedding) >= threshold
}

impl D3l {
    /// Stage 1 entry point: profile and sign a target once for reuse
    /// across queries (`query_prepared`, `rank_all_prepared`,
    /// `related_table_set_prepared`).
    pub fn prepare_target(&self, target: &Table) -> PreparedTarget {
        let (profiles, sigs) = self.profile_and_sign(target);
        PreparedTarget {
            profiles,
            sigs,
            subject: d3l_ml::subject_attribute(target),
        }
    }

    /// Prepare an already-indexed table as a query target, straight
    /// from its stored profiles — no raw rows needed, which is what
    /// lets a serving process answer "rank everything against lake
    /// member X" without keeping the CSVs resident. Signatures are
    /// re-derived from the stored token hashes with this index's
    /// hashers, so the result is identical to profiling the original
    /// table. `None` for out-of-range ids and removal tombstones.
    pub fn prepare_indexed(&self, id: TableId) -> Option<PreparedTarget> {
        let idx = id.index();
        if idx >= self.profiles.len() || self.removed[idx] {
            return None;
        }
        let profiles = self.profiles[idx].clone();
        let sigs = profiles
            .iter()
            .map(|p| crate::index::sign_profile(p, &self.minhasher, &self.projector))
            .collect();
        Some(PreparedTarget {
            profiles,
            sigs,
            subject: self.subjects[idx].map(|c| c as usize),
        })
    }

    /// The k-most related lake tables to `target` with default
    /// options.
    pub fn query(&self, target: &Table, k: usize) -> Vec<TableMatch> {
        self.query_with(target, k, &QueryOptions::default())
    }

    /// The k-most related lake tables with explicit options.
    pub fn query_with(&self, target: &Table, k: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        self.query_prepared(&self.prepare_target(target), k, opts)
    }

    /// [`D3l::query_with`] over an already-prepared target.
    pub fn query_prepared(
        &self,
        prepared: &PreparedTarget,
        k: usize,
        opts: &QueryOptions,
    ) -> Vec<TableMatch> {
        let width = opts
            .lookup_width
            .unwrap_or_else(|| self.cfg.lookup_width(k));
        let mut all = self.rank_all_prepared(prepared, width, opts);
        all.truncate(k);
        all
    }

    /// Rank *every* table with at least one related attribute,
    /// closest first. `width` is the per-attribute, per-index lookup
    /// size.
    pub fn rank_all(&self, target: &Table, width: usize, opts: &QueryOptions) -> Vec<TableMatch> {
        self.rank_all_prepared(&self.prepare_target(target), width, opts)
    }

    /// [`D3l::rank_all`] over an already-prepared target.
    pub fn rank_all_prepared(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
    ) -> Vec<TableMatch> {
        let threads = self.cfg.effective_query_threads(opts.threads);
        self.rank_all_inner(prepared, width, opts, threads)
    }

    /// The top-k answers for many targets at once, fanning the
    /// batch out over the configured query threads. Each target is
    /// profiled exactly once and ranked with the same deterministic
    /// pipeline as [`D3l::query`], so
    /// `query_batch(ts, k)[i] == query(&ts[i], k)` at every thread
    /// count.
    pub fn query_batch(&self, targets: &[Table], k: usize) -> Vec<Vec<TableMatch>> {
        let opts = vec![QueryOptions::default(); targets.len()];
        self.query_batch_with(targets, k, &opts)
    }

    /// [`D3l::query_batch`] with per-target options (one
    /// [`QueryOptions`] per target — the evaluation loop excludes
    /// each target itself from its own answer).
    ///
    /// The batch fans out over the config/env thread count;
    /// [`QueryOptions::threads`] is ignored in batch mode. When the
    /// batch is smaller than the thread budget, the leftover workers
    /// parallelize *within* each target instead, so a one-element
    /// batch performs like [`D3l::query_with`].
    pub fn query_batch_with(
        &self,
        targets: &[Table],
        k: usize,
        opts: &[QueryOptions],
    ) -> Vec<Vec<TableMatch>> {
        assert_eq!(targets.len(), opts.len(), "one QueryOptions per target");
        let work: Vec<(&Table, &QueryOptions)> = targets.iter().zip(opts).collect();
        let (outer, inner) = self.batch_threads(work.len());
        par_map(&work, outer, |&(target, opt)| {
            let width = opt.lookup_width.unwrap_or_else(|| self.cfg.lookup_width(k));
            let prepared = self.prepare_target(target);
            let mut all = self.rank_all_inner(&prepared, width, opt, inner);
            all.truncate(k);
            all
        })
    }

    /// [`D3l::rank_all`] for many targets at once, parallel over
    /// targets (each worker runs the deterministic pipeline, so
    /// batched and per-target results are identical; thread budget as
    /// in [`D3l::query_batch_with`]).
    pub fn rank_all_batch(
        &self,
        targets: &[Table],
        width: usize,
        opts: &[QueryOptions],
    ) -> Vec<Vec<TableMatch>> {
        assert_eq!(targets.len(), opts.len(), "one QueryOptions per target");
        let work: Vec<(&Table, &QueryOptions)> = targets.iter().zip(opts).collect();
        let (outer, inner) = self.batch_threads(work.len());
        par_map(&work, outer, |&(target, opt)| {
            let prepared = self.prepare_target(target);
            self.rank_all_inner(&prepared, width, opt, inner)
        })
    }

    /// Split the thread budget between batch fan-out (outer) and the
    /// per-target pipeline (inner): big batches get one worker per
    /// target, small batches hand the spare workers to the pipeline
    /// stages.
    fn batch_threads(&self, batch_len: usize) -> (usize, usize) {
        let budget = self.cfg.effective_query_threads(None);
        let outer = budget.min(batch_len.max(1));
        let inner = (budget / outer.max(1)).max(1);
        (outer, inner)
    }

    /// The full pipeline over one prepared target with an explicit
    /// worker count (batch workers pass their share of the thread
    /// budget — 1 for batches at least as large as the budget).
    fn rank_all_inner(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<TableMatch> {
        let mut timer = crate::trace::StageTimer::start(opts.trace.as_deref());
        let candidates = self.stage_candidates(prepared, width, opts, threads);
        timer.candidates_done();
        let scored = self.stage_score(prepared, &candidates, threads);
        timer.score_done();
        let ranked = stage_aggregate(&scored, opts);
        timer.aggregate_done();
        ranked
    }

    /// Stage 1 — candidate generation: per target attribute, the
    /// union of the four forests' lookups, filtered by `exclude` and
    /// sorted by [`AttrRef::key`] so every downstream iteration order
    /// is thread-count-independent.
    fn stage_candidates(
        &self,
        prepared: &PreparedTarget,
        width: usize,
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<AttrRef>> {
        let work: Vec<(&AttributeProfile, &AttrSignatures)> =
            prepared.profiles.iter().zip(&prepared.sigs).collect();
        par_map(&work, threads, |&(tp, ts)| {
            let mut cands: Vec<AttrRef> = self
                .gather_candidates(tp, ts, width, opts.evidence)
                .into_iter()
                .filter(|attr| opts.exclude != Some(attr.table))
                .collect();
            cands.sort_unstable_by_key(|a| a.key());
            cands
        })
    }

    /// Stage 2 — pairwise evidence scoring: a five-distance vector
    /// per (target attribute, candidate) pair, parallel over the
    /// flattened pair list. Pairs without signal (all distances 1)
    /// are dropped. Candidate order within each attribute is
    /// preserved from stage 1.
    fn stage_score(
        &self,
        prepared: &PreparedTarget,
        candidates: &[Vec<AttrRef>],
        threads: usize,
    ) -> Vec<Vec<(AttrRef, DistanceVector)>> {
        // Algorithm 2 line 4 is a per-candidate-table predicate;
        // precompute it for every table that could face a KS
        // measurement so the per-pair workers stay pure. Fallback
        // signatures are likewise signed once, not once per pair.
        let fallbacks = self.sig_fallbacks();
        let guards = self.subject_guards(prepared, candidates, threads, &fallbacks);
        let work: Vec<(usize, AttrRef)> = candidates
            .iter()
            .enumerate()
            .flat_map(|(i, cands)| cands.iter().map(move |&attr| (i, attr)))
            .collect();
        let scored = par_map(&work, threads, |&(i, attr)| {
            self.pair_distances(
                &prepared.profiles[i],
                &prepared.sigs[i],
                attr,
                &guards,
                &fallbacks,
            )
        });
        let mut out: Vec<Vec<(AttrRef, DistanceVector)>> = vec![Vec::new(); candidates.len()];
        for (&(i, attr), dv) in work.iter().zip(scored) {
            if dv.has_signal() {
                out[i].push((attr, dv));
            }
        }
        out
    }

    /// The set of lake tables related to `target` by at least one
    /// evidence type — `I*.lookup(T)` in Algorithms 2 and 3.
    pub fn related_table_set(&self, target: &Table, width: usize) -> HashSet<TableId> {
        self.related_table_set_prepared(&self.prepare_target(target), width)
    }

    /// [`D3l::related_table_set`] over an already-prepared target.
    /// Runs stage 1 only, without the ranking pipeline's candidate
    /// sort — the output is an unordered set.
    pub fn related_table_set_prepared(
        &self,
        prepared: &PreparedTarget,
        width: usize,
    ) -> HashSet<TableId> {
        let threads = self.cfg.effective_query_threads(None);
        let work: Vec<(&AttributeProfile, &AttrSignatures)> =
            prepared.profiles.iter().zip(&prepared.sigs).collect();
        par_map(&work, threads, |&(tp, ts)| {
            self.gather_candidates(tp, ts, width, None)
        })
        .into_iter()
        .flatten()
        .map(|attr| attr.table)
        .collect()
    }

    /// Look up one target attribute in the indexes (restricted to one
    /// evidence type when `only` is set; `Distribution` uses the N/F
    /// indexes as its blocking mechanism, mirroring Algorithm 2).
    fn gather_candidates(
        &self,
        tp: &AttributeProfile,
        ts: &AttrSignatures,
        width: usize,
        only: Option<Evidence>,
    ) -> HashSet<AttrRef> {
        let mut out = HashSet::new();
        let want = |e: Evidence| match only {
            None => true,
            Some(Evidence::Distribution) => matches!(e, Evidence::Name | Evidence::Format),
            Some(x) => x == e,
        };
        if want(Evidence::Name) && !tp.qset.is_empty() {
            for h in self.i_n.query(&ts.name, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Format) && !tp.rset.is_empty() {
            for h in self.i_f.query(&ts.format, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Value) && tp.has_text() {
            for h in self.i_v.query(&ts.value, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        if want(Evidence::Embedding) && tp.has_embedding() {
            for h in self.i_e.query(&ts.embedding, width) {
                out.insert(AttrRef::from_key(h.id));
            }
        }
        out
    }

    /// Algorithm 2 line 4 precomputation: for every candidate table
    /// that contains a numeric candidate attribute paired with a
    /// numeric target attribute, whether its subject attribute and
    /// the target's are related in any index.
    fn subject_guards(
        &self,
        prepared: &PreparedTarget,
        candidates: &[Vec<AttrRef>],
        threads: usize,
        fallbacks: &SigFallbacks,
    ) -> HashMap<TableId, bool> {
        let mut tables: BTreeSet<TableId> = BTreeSet::new();
        for (i, cands) in candidates.iter().enumerate() {
            if !prepared.profiles[i].is_numeric {
                continue;
            }
            for attr in cands {
                if self.profile(*attr).is_numeric {
                    tables.insert(attr.table);
                }
            }
        }
        let tables: Vec<TableId> = tables.into_iter().collect();
        let guards = par_map(&tables, threads, |&t| {
            self.subjects_related(prepared, t, fallbacks)
        });
        tables.into_iter().zip(guards).collect()
    }

    /// The five estimated distances of a (target attr, lake attr)
    /// pair, with Algorithm 2 deciding whether KS is computed.
    fn pair_distances(
        &self,
        tp: &AttributeProfile,
        ts: &AttrSignatures,
        attr: AttrRef,
        subject_guards: &HashMap<TableId, bool>,
        fallbacks: &SigFallbacks,
    ) -> DistanceVector {
        let sp = self.profile(attr);
        let ss = self.stored_signatures_ref(attr, fallbacks);
        let guard_subject = subject_guards.get(&attr.table).copied().unwrap_or(false);
        pair_distances_resolved(tp, ts, sp, ss, guard_subject, self.cfg.threshold)
    }

    /// Algorithm 2 line 4: are the subject attributes of the target
    /// and of lake table `s_table` related in any index
    /// (`i' ∈ I*.lookup(i)`)?
    fn subjects_related(
        &self,
        prepared: &PreparedTarget,
        s_table: TableId,
        fallbacks: &SigFallbacks,
    ) -> bool {
        let ss = self
            .subject_of(s_table)
            .map(|s_attr| self.stored_signatures_ref(s_attr, fallbacks));
        subjects_related_resolved(prepared, ss, self.cfg.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::D3lConfig;
    use d3l_table::DataLake;

    /// The Figure 1 scenario plus an unrelated decoy table.
    fn lake() -> DataLake {
        let mut lake = DataLake::new();
        lake.add(
            Table::from_rows(
                "s1_gp_practices",
                &["Practice Name", "Address", "City", "Postcode", "Patients"],
                &[
                    vec![
                        "Dr E Cullen".into(),
                        "51 Botanic Av".into(),
                        "Belfast".into(),
                        "BT7 1JL".into(),
                        "1202".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "1a Chapel St".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "3572".into(),
                    ],
                    vec![
                        "Radclife".into(),
                        "69 Church St".into(),
                        "Manchester".into(),
                        "M26 2SP".into(),
                        "2210".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "s2_gp_funding",
                &["Practice", "City", "Postcode", "Payment"],
                &[
                    vec![
                        "The London Clinic".into(),
                        "London".into(),
                        "W1G 6BW".into(),
                        "73648".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "15530".into(),
                    ],
                    vec![
                        "Radclife".into(),
                        "Manchester".into(),
                        "M26 2SP".into(),
                        "20110".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "decoy_planets",
                &["Planet", "Mass", "Moons"],
                &[
                    vec!["Jupiter".into(), "1.898e27".into(), "95".into()],
                    vec!["Saturn".into(), "5.683e26".into(), "146".into()],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake
    }

    fn target() -> Table {
        Table::from_rows(
            "target_gps",
            &["Practice", "Street", "City", "Postcode", "Hours"],
            &[
                vec![
                    "Radclife".into(),
                    "69 Church St".into(),
                    "Manchester".into(),
                    "M26 2SP".into(),
                    "07:00-20:00".into(),
                ],
                vec![
                    "Bolton Medical".into(),
                    "21 Rupert St".into(),
                    "Bolton".into(),
                    "BL3 6PY".into(),
                    "08:00-16:00".into(),
                ],
                vec![
                    "Blackfriars".into(),
                    "1a Chapel St".into(),
                    "Salford".into(),
                    "M3 6AF".into(),
                    "08:00-18:00".into(),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn related_tables_rank_above_decoys() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.query(&target(), 3);
        assert!(matches.len() >= 2);
        let names: Vec<&str> = matches.iter().map(|m| d3l.table_name(m.table)).collect();
        assert!(
            names[0].starts_with("s1") || names[0].starts_with("s2"),
            "{names:?}"
        );
        assert!(
            names[1].starts_with("s1") || names[1].starts_with("s2"),
            "{names:?}"
        );
        if let Some(decoy) = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "decoy_planets")
        {
            let best = matches[0].distance;
            assert!(
                decoy.distance > best,
                "decoy must rank below related tables"
            );
        }
        // Distances ascend.
        for w in matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn alignments_cover_shared_attributes() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.query(&target(), 2);
        let s2 = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "s2_gp_funding")
            .expect("s2 must be returned");
        // Practice, City, Postcode target columns (0, 2, 3) should be
        // covered.
        let covered = s2.covered_targets();
        assert!(covered.contains(&0), "Practice covered: {covered:?}");
        assert!(covered.contains(&2), "City covered: {covered:?}");
        assert!(covered.contains(&3), "Postcode covered: {covered:?}");
    }

    #[test]
    fn exclude_removes_self_matches() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let t = lake().table_by_name("s1_gp_practices").unwrap().clone();
        let opts = QueryOptions {
            exclude: Some(TableId(0)),
            ..Default::default()
        };
        let matches = d3l.query_with(&t, 3, &opts);
        assert!(matches.iter().all(|m| m.table != TableId(0)));
    }

    #[test]
    fn single_evidence_mode_ranks_by_that_evidence() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let opts = QueryOptions {
            evidence: Some(Evidence::Name),
            ..Default::default()
        };
        let matches = d3l.query_with(&target(), 3, &opts);
        for m in &matches {
            assert!((m.distance - m.vector.get(Evidence::Name)).abs() < 1e-12);
        }
    }

    #[test]
    fn related_table_set_includes_sources() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let related = d3l.related_table_set(&target(), 50);
        assert!(related.contains(&TableId(0)));
        assert!(related.contains(&TableId(1)));
    }

    #[test]
    fn numeric_ks_guard_blocks_unrelated_tables() {
        // Patients (s1) vs Moons (decoy): both numeric, but no name,
        // format, or subject evidence links the pair's tables, so D
        // must stay at 1 for the decoy's numeric column.
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let matches = d3l.rank_all(&target(), 50, &QueryOptions::default());
        if let Some(decoy) = matches
            .iter()
            .find(|m| d3l.table_name(m.table) == "decoy_planets")
        {
            assert!(
                (decoy.vector.get(Evidence::Distribution) - 1.0).abs() < 1e-9,
                "KS must be guarded off for the decoy"
            );
        }
    }

    #[test]
    fn query_zero_k() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        assert!(d3l.query(&target(), 0).is_empty());
    }

    fn assert_identical(a: &[TableMatch], b: &[TableMatch]) {
        assert_eq!(a.len(), b.len(), "ranking lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            for (dx, dy) in x.vector.0.iter().zip(&y.vector.0) {
                assert_eq!(dx.to_bits(), dy.to_bits());
            }
            assert_eq!(x.alignments.len(), y.alignments.len());
            for (ax, ay) in x.alignments.iter().zip(&y.alignments) {
                assert_eq!(ax.target_column, ay.target_column);
                assert_eq!(ax.source, ay.source);
                for (dx, dy) in ax.distances.0.iter().zip(&ay.distances.0) {
                    assert_eq!(dx.to_bits(), dy.to_bits());
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let t = target();
        let at = |n: usize| {
            d3l.rank_all(
                &t,
                50,
                &QueryOptions {
                    threads: Some(n),
                    ..Default::default()
                },
            )
        };
        let base = at(1);
        assert!(!base.is_empty());
        for n in [2, 4, 8] {
            assert_identical(&base, &at(n));
        }
    }

    #[test]
    fn prepared_target_reuse_matches_fresh_profiling() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        let t = target();
        let prepared = d3l.prepare_target(&t);
        assert_eq!(prepared.arity(), t.arity());
        let opts = QueryOptions::default();
        assert_identical(
            &d3l.query_with(&t, 3, &opts),
            &d3l.query_prepared(&prepared, 3, &opts),
        );
        assert_eq!(
            d3l.related_table_set(&t, 50),
            d3l.related_table_set_prepared(&prepared, 50)
        );
    }

    #[test]
    fn batch_matches_per_target_queries() {
        let lake = lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let targets: Vec<Table> = vec![
            target(),
            lake.table_by_name("s1_gp_practices").unwrap().clone(),
            lake.table_by_name("decoy_planets").unwrap().clone(),
        ];
        let batched = d3l.query_batch(&targets, 3);
        assert_eq!(batched.len(), targets.len());
        for (t, b) in targets.iter().zip(&batched) {
            assert_identical(&d3l.query(t, 3), b);
        }
        // Per-target options flow through.
        let opts: Vec<QueryOptions> = targets
            .iter()
            .map(|t| QueryOptions {
                exclude: lake.id_of(t.name()),
                ..Default::default()
            })
            .collect();
        let batched = d3l.query_batch_with(&targets, 3, &opts);
        for (b, o) in batched.iter().zip(&opts) {
            if let Some(ex) = o.exclude {
                assert!(b.iter().all(|m| m.table != ex), "excluded self returned");
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let d3l = D3l::index_lake(&lake(), D3lConfig::fast());
        assert!(d3l.query_batch(&[], 5).is_empty());
    }
}
