//! Continuous ingestion: poll-based lake watching with micro-batched
//! deltas and background compaction.
//!
//! The paper's data-lake setting is not static — datasets arrive,
//! change and disappear while discovery queries keep running. This
//! module drives the store's append-only machinery continuously:
//!
//! * a **scanner** polls a directory of CSVs over plain `std::fs`
//!   (no notification APIs, no dependencies), fingerprinting each
//!   file by `(len, mtime)`;
//! * a change is only acted on after a **stability window** — the
//!   fingerprint must hold across two consecutive polls — so a file
//!   still being copied in is re-queued rather than half-ingested;
//! * stable changes are **micro-batched**: applied when either
//!   [`WatchConfig::batch_max`] changes are queued or the oldest has
//!   waited [`WatchConfig::batch_window`], each as one delta segment
//!   through [`EngineHandle`] (new file → add, changed file →
//!   remove + add, deleted file → remove), in deterministic name
//!   order within a batch;
//! * a background **maintenance thread** folds accumulated delta
//!   segments into a fresh base snapshot once the segment count or
//!   the delta byte total crosses a threshold — queries keep running
//!   on immutable snapshots throughout, and serving replicas follow
//!   with [`EngineHandle::reload_latest`].
//!
//! The watcher is the store's **single writer**: exactly one watcher
//! (or CLI mutator) per index directory. Replicas open the same
//! directory read-only and poll `reload_latest`.
//!
//! [`Ingestor`] is the synchronous core (one `poll()` = one scan +
//! due-batch flush) so tests can drive every interleaving without
//! threads; [`Watcher`] wraps it in the two background threads and
//! publishes [`WatchStats`] for `/stats` and `/metrics`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use d3l_table::csv;
use d3l_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

use crate::hotswap::{EngineHandle, MaintenanceError};

/// Tuning knobs of the continuous-ingestion loop.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Directory scan cadence; also the width of the stability
    /// window (a change must survive one full interval unchanged).
    pub poll_interval: Duration,
    /// Debounce window: a queued change is applied no later than
    /// this after it became stable (sooner if the batch fills).
    pub batch_window: Duration,
    /// Apply a batch as soon as this many changes are queued.
    pub batch_max: usize,
    /// Auto-compact once this many delta segments accumulate.
    pub compact_segments: usize,
    /// Auto-compact once the delta segments total this many bytes.
    pub compact_bytes: u64,
    /// Log each batch, skip and compaction to stderr (the CLI
    /// foreground mode; servers keep it off and expose stats
    /// instead).
    pub verbose: bool,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            poll_interval: Duration::from_millis(200),
            batch_window: Duration::from_millis(500),
            batch_max: 16,
            compact_segments: 64,
            compact_bytes: 64 << 20,
            verbose: false,
        }
    }
}

/// Watcher state shared with serving layers: lock-free counters,
/// gauges and the ingestion-lag histogram, all registered in one
/// [`Registry`] so `/metrics` renders them and `/stats` reads them.
#[derive(Debug)]
pub struct WatchStats {
    registry: Registry,
    files_tracked: Arc<Gauge>,
    queued: Arc<Gauge>,
    polls: Arc<Counter>,
    batches: Arc<Counter>,
    added: Arc<Counter>,
    replaced: Arc<Counter>,
    removed: Arc<Counter>,
    skipped: Arc<Counter>,
    errors: Arc<Counter>,
    compactions: Arc<Counter>,
    ingest_lag: Arc<Histogram>,
}

impl Default for WatchStats {
    fn default() -> Self {
        Self::new()
    }
}

impl WatchStats {
    /// A fresh stats block with every series pre-registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        const APPLIED: &str = "d3l_watch_applied_total";
        const APPLIED_HELP: &str = "Tables applied to the engine by the watcher, by operation.";
        WatchStats {
            files_tracked: registry.gauge(
                "d3l_watch_files_tracked",
                "CSV files currently tracked in the watched directory.",
                &[],
            ),
            queued: registry.gauge(
                "d3l_watch_queued_changes",
                "Stable changes waiting in the current micro-batch.",
                &[],
            ),
            polls: registry.counter(
                "d3l_watch_polls_total",
                "Directory scans performed by the watcher.",
                &[],
            ),
            batches: registry.counter(
                "d3l_watch_batches_total",
                "Micro-batches applied to the engine.",
                &[],
            ),
            added: registry.counter(APPLIED, APPLIED_HELP, &[("op", "add")]),
            replaced: registry.counter(APPLIED, APPLIED_HELP, &[("op", "replace")]),
            removed: registry.counter(APPLIED, APPLIED_HELP, &[("op", "remove")]),
            skipped: registry.counter(
                "d3l_watch_skipped_files_total",
                "Files skipped because they failed to read or parse.",
                &[],
            ),
            errors: registry.counter(
                "d3l_watch_errors_total",
                "Watcher loop errors (scan or store failures).",
                &[],
            ),
            compactions: registry.counter(
                "d3l_watch_compactions_total",
                "Background compactions triggered by the maintenance thread.",
                &[],
            ),
            ingest_lag: registry.histogram(
                "d3l_watch_ingest_lag_seconds",
                "Per-change ingestion lag: change first observed to applied in the engine.",
                &[],
            ),
            registry,
        }
    }

    /// The registry holding every watcher series, for `/metrics`.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// CSV files currently tracked.
    pub fn files_tracked(&self) -> u64 {
        self.files_tracked.get()
    }

    /// Stable changes waiting in the current micro-batch.
    pub fn queued(&self) -> u64 {
        self.queued.get()
    }

    /// Directory scans performed.
    pub fn polls(&self) -> u64 {
        self.polls.get()
    }

    /// Micro-batches applied.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Tables added (new files).
    pub fn added(&self) -> u64 {
        self.added.get()
    }

    /// Tables replaced (changed files).
    pub fn replaced(&self) -> u64 {
        self.replaced.get()
    }

    /// Tables removed (deleted files).
    pub fn removed(&self) -> u64 {
        self.removed.get()
    }

    /// Files skipped for read/parse failures.
    pub fn skipped(&self) -> u64 {
        self.skipped.get()
    }

    /// Watcher loop errors.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Background compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions.get()
    }

    /// Snapshot of the ingestion-lag distribution.
    pub fn ingest_lag(&self) -> HistogramSnapshot {
        self.ingest_lag.snapshot()
    }
}

/// `(len, mtime)` identity of a file's content as far as a poll-based
/// scanner can see it. Equality across two polls is the stability
/// criterion; any change restarts the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    mtime_ns: u128,
}

fn fingerprint(md: &std::fs::Metadata) -> Fingerprint {
    let mtime_ns = md
        .modified()
        .ok()
        .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Fingerprint {
        len: md.len(),
        mtime_ns,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileState {
    /// Fingerprint observed, not yet confirmed stable: it must hold
    /// across one full poll interval before the file may be batched.
    /// A half-copied CSV keeps changing its fingerprint and therefore
    /// keeps settling — it can never enter a delta segment.
    Settling,
    /// Stable; an upsert sits in the batch queue.
    Queued,
    /// Applied to the engine at this fingerprint (or intentionally
    /// skipped after a parse failure — retried only when the file
    /// changes again).
    Ingested,
}

#[derive(Debug)]
struct TrackedFile {
    path: PathBuf,
    fp: Fingerprint,
    state: FileState,
    /// When the current change episode was first observed (start of
    /// the ingestion-lag clock).
    detected: Instant,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueuedOp {
    /// Add the table, or replace it when the engine already has one
    /// under this name.
    Upsert,
    /// Tombstone the table of a deleted file.
    Remove,
}

#[derive(Debug)]
struct QueuedChange {
    op: QueuedOp,
    /// Lag clock start (first observation of the change).
    detected: Instant,
    /// Debounce clock start (when the change became stable and
    /// entered the queue).
    queued_at: Instant,
}

/// The synchronous ingestion core: one [`Ingestor::poll`] scans the
/// directory, promotes stable changes into the batch queue, and
/// flushes the batch if it is due. The [`Watcher`] calls this on a
/// timer; tests call it directly to drive exact interleavings.
pub struct Ingestor {
    engine: Arc<EngineHandle>,
    dir: PathBuf,
    cfg: WatchConfig,
    stats: Arc<WatchStats>,
    files: BTreeMap<String, TrackedFile>,
    queue: BTreeMap<String, QueuedChange>,
}

impl Ingestor {
    /// Track `dir`, taking the current contents as the baseline:
    /// files whose table name (the file stem) is already indexed are
    /// assumed current — fingerprints exist only while the watcher
    /// runs, so across a restart a byte-stable file is
    /// indistinguishable from a changed one and re-ingesting
    /// everything would rewrite the whole lake on every boot. Files
    /// present but not indexed settle and ingest normally; everything
    /// that changes from here on is picked up.
    pub fn new(
        engine: Arc<EngineHandle>,
        dir: impl AsRef<Path>,
        cfg: WatchConfig,
        stats: Arc<WatchStats>,
    ) -> std::io::Result<Ingestor> {
        let dir = dir.as_ref().to_path_buf();
        let indexed: BTreeSet<String> = engine
            .snapshot()
            .engine
            .name_to_id()
            .keys()
            .map(|s| s.to_string())
            .collect();
        let mut files = BTreeMap::new();
        for (name, path, fp) in Self::list_csvs(&dir)? {
            let state = if indexed.contains(&name) {
                FileState::Ingested
            } else {
                FileState::Settling
            };
            files.insert(
                name,
                TrackedFile {
                    path,
                    fp,
                    state,
                    detected: Instant::now(),
                },
            );
        }
        let ingestor = Ingestor {
            engine,
            dir,
            cfg,
            stats,
            files,
            queue: BTreeMap::new(),
        };
        ingestor
            .stats
            .files_tracked
            .set(ingestor.files.len() as u64);
        Ok(ingestor)
    }

    /// The stats block this ingestor records into.
    pub fn stats(&self) -> &Arc<WatchStats> {
        &self.stats
    }

    /// Every `*.csv` regular file in `dir` as
    /// `(table name, path, fingerprint)`.
    fn list_csvs(dir: &Path) -> std::io::Result<Vec<(String, PathBuf, Fingerprint)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "csv") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(md) = entry.metadata() else {
                // Raced with a delete between readdir and stat: the
                // next poll sees the settled truth.
                continue;
            };
            if !md.is_file() {
                continue;
            }
            out.push((name.to_string(), path, fingerprint(&md)));
        }
        Ok(out)
    }

    /// One watcher tick: scan the directory, promote stable changes
    /// into the batch queue, and apply the batch if it is due (full,
    /// or its oldest change has waited a full batch window). Returns
    /// the number of operations applied to the engine.
    pub fn poll(&mut self) -> Result<usize, MaintenanceError> {
        self.scan().map_err(d3l_store::StoreError::from)?;
        if !self.batch_due() {
            return Ok(0);
        }
        self.flush()
    }

    fn scan(&mut self) -> std::io::Result<()> {
        self.stats.polls.inc();
        let now = Instant::now();
        let mut seen = BTreeSet::new();
        for (name, path, fp) in Self::list_csvs(&self.dir)? {
            seen.insert(name.clone());
            match self.files.get_mut(&name) {
                None => {
                    // New file: start settling. The lag clock starts
                    // now — it ends when the table is queryable.
                    self.files.insert(
                        name,
                        TrackedFile {
                            path,
                            fp,
                            state: FileState::Settling,
                            detected: now,
                        },
                    );
                }
                Some(t) if t.fp != fp => {
                    // Changed since the last poll. If it was mid-
                    // settle this is the same change episode still in
                    // flight (keep the lag clock); if it was queued
                    // or ingested a new episode starts. Either way
                    // the stability window restarts and any queued
                    // upsert is withdrawn — a file observed changing
                    // must never be batched.
                    if t.state != FileState::Settling {
                        t.detected = now;
                    }
                    t.fp = fp;
                    t.path = path;
                    t.state = FileState::Settling;
                    self.queue.remove(&name);
                }
                Some(t) if t.state == FileState::Settling => {
                    // Unchanged across a full poll interval: stable.
                    t.state = FileState::Queued;
                    self.queue.insert(
                        name,
                        QueuedChange {
                            op: QueuedOp::Upsert,
                            detected: t.detected,
                            queued_at: now,
                        },
                    );
                }
                Some(_) => {}
            }
        }
        let gone: Vec<String> = self
            .files
            .keys()
            .filter(|k| !seen.contains(*k))
            .cloned()
            .collect();
        for name in gone {
            let t = self.files.remove(&name).expect("tracked");
            match t.state {
                // An ingested table whose file vanished gets a
                // tombstone (debounced like any other change).
                FileState::Ingested => {
                    self.queue.insert(
                        name,
                        QueuedChange {
                            op: QueuedOp::Remove,
                            detected: now,
                            queued_at: now,
                        },
                    );
                }
                // Appeared and vanished before ever being ingested:
                // forget it (and withdraw any queued upsert).
                FileState::Settling | FileState::Queued => {
                    self.queue.remove(&name);
                }
            }
        }
        self.stats.files_tracked.set(self.files.len() as u64);
        self.stats.queued.set(self.queue.len() as u64);
        Ok(())
    }

    /// Whether the queued batch should be applied now.
    fn batch_due(&self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        self.queue.len() >= self.cfg.batch_max.max(1)
            || self
                .queue
                .values()
                .map(|q| q.queued_at)
                .min()
                .is_some_and(|oldest| oldest.elapsed() >= self.cfg.batch_window)
    }

    /// Apply one micro-batch: up to [`WatchConfig::batch_max`] queued
    /// changes, in name order (deterministic — an interrupted watcher
    /// replayed from the surviving files reproduces the same engine).
    /// Returns the number of operations applied. On a store-level
    /// error the failing change is re-queued so nothing is lost
    /// across a transient failure.
    pub fn flush(&mut self) -> Result<usize, MaintenanceError> {
        let take: Vec<String> = self
            .queue
            .keys()
            .take(self.cfg.batch_max.max(1))
            .cloned()
            .collect();
        let mut applied = 0usize;
        for name in take {
            let Some(change) = self.queue.remove(&name) else {
                continue;
            };
            match self.apply(&name, &change) {
                Ok(true) => applied += 1,
                Ok(false) => {}
                Err(e) => {
                    self.queue.insert(name, change);
                    self.stats.queued.set(self.queue.len() as u64);
                    return Err(e);
                }
            }
        }
        if applied > 0 {
            self.stats.batches.inc();
            if self.cfg.verbose {
                eprintln!(
                    "[watch] applied batch of {applied} change{}",
                    if applied == 1 { "" } else { "s" }
                );
            }
        }
        self.stats.queued.set(self.queue.len() as u64);
        Ok(applied)
    }

    /// Drain the queue completely (shutdown path: settled changes
    /// must not be stranded by a graceful stop).
    pub fn drain(&mut self) -> Result<usize, MaintenanceError> {
        let mut total = 0;
        while !self.queue.is_empty() {
            let applied = self.flush()?;
            total += applied;
            if applied == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Apply one change; `Ok(true)` when the engine was mutated.
    fn apply(&mut self, name: &str, change: &QueuedChange) -> Result<bool, MaintenanceError> {
        match change.op {
            QueuedOp::Remove => match self.engine.remove_table(name) {
                Ok(_) => {
                    self.stats.removed.inc();
                    self.stats.ingest_lag.record(change.detected.elapsed());
                    Ok(true)
                }
                // Deleted before it was ever indexed (e.g. its only
                // content never parsed): nothing to remove.
                Err(MaintenanceError::UnknownTable(_)) => Ok(false),
                Err(e) => Err(e),
            },
            QueuedOp::Upsert => {
                let Some(tracked) = self.files.get_mut(name) else {
                    // Deleted after queueing; the scan already
                    // withdrew or replaced the entry.
                    return Ok(false);
                };
                let text = match std::fs::read_to_string(&tracked.path) {
                    Ok(text) => text,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
                    Err(e) => {
                        // Unreadable (permissions, I/O): skip until
                        // the file changes again.
                        tracked.state = FileState::Ingested;
                        self.stats.skipped.inc();
                        if self.cfg.verbose {
                            eprintln!("[watch] skipping {name}: {e}");
                        }
                        return Ok(false);
                    }
                };
                let table = match csv::parse_csv(name.to_string(), &text) {
                    Ok(table) => table,
                    Err(e) => {
                        tracked.state = FileState::Ingested;
                        self.stats.skipped.inc();
                        if self.cfg.verbose {
                            eprintln!("[watch] skipping {name}: {e}");
                        }
                        return Ok(false);
                    }
                };
                let replace = self
                    .engine
                    .snapshot()
                    .engine
                    .name_to_id()
                    .contains_key(name);
                if replace {
                    // Changed file: tombstone the old rows, then add
                    // the new ones — two delta segments, exactly what
                    // a CLI remove + add would write. If the add
                    // below fails the re-queued upsert retries as a
                    // plain add (the name is gone from the engine).
                    self.engine.remove_table(name)?;
                }
                self.engine.add_table(&table)?;
                tracked.state = FileState::Ingested;
                if replace {
                    self.stats.replaced.inc();
                } else {
                    self.stats.added.inc();
                }
                self.stats.ingest_lag.record(change.detected.elapsed());
                Ok(true)
            }
        }
    }
}

/// Fold the delta segments into a fresh base snapshot if either
/// threshold in `cfg` is crossed. Returns whether a compaction ran.
/// The maintenance thread calls this on a timer; exposed so tests
/// and embedders can drive the same policy synchronously.
pub fn compact_if_due(engine: &EngineHandle, cfg: &WatchConfig) -> Result<bool, MaintenanceError> {
    let (_base, delta_bytes, segments) = engine.disk_stats()?;
    if segments == 0 {
        return Ok(false);
    }
    if segments >= cfg.compact_segments.max(1) || delta_bytes >= cfg.compact_bytes.max(1) {
        engine.compact()?;
        return Ok(true);
    }
    Ok(false)
}

/// The continuous-ingestion driver: an ingest thread polling an
/// [`Ingestor`] and a maintenance thread compacting past the
/// configured thresholds. Queries on the shared [`EngineHandle`]
/// keep running on immutable snapshots throughout.
pub struct Watcher {
    stats: Arc<WatchStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Watcher {
    /// Start watching `dir`, applying changes to `engine`. Fails only
    /// if the directory cannot be scanned at all; runtime errors are
    /// counted in [`WatchStats::errors`] and logged, and the loop
    /// keeps going.
    pub fn start(
        engine: Arc<EngineHandle>,
        dir: impl AsRef<Path>,
        cfg: WatchConfig,
    ) -> std::io::Result<Watcher> {
        let stats = Arc::new(WatchStats::new());
        let mut ingestor = Ingestor::new(engine.clone(), dir, cfg.clone(), stats.clone())?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(2);

        let ingest_stop = stop.clone();
        let ingest_stats = stats.clone();
        let poll = cfg.poll_interval;
        let verbose = cfg.verbose;
        threads.push(
            std::thread::Builder::new()
                .name("d3l-watch-ingest".into())
                .spawn(move || {
                    while !ingest_stop.load(Ordering::Relaxed) {
                        if let Err(e) = ingestor.poll() {
                            ingest_stats.errors.inc();
                            eprintln!("[watch] ingest error: {e}");
                        }
                        sleep_until_stopped(&ingest_stop, poll);
                    }
                    // Graceful stop: apply what already settled.
                    if let Err(e) = ingestor.drain() {
                        ingest_stats.errors.inc();
                        eprintln!("[watch] drain error: {e}");
                    }
                })
                .expect("spawn watcher ingest thread"),
        );

        let maint_stop = stop.clone();
        let maint_stats = stats.clone();
        let maint_cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name("d3l-watch-compact".into())
                .spawn(move || {
                    let cadence = maint_cfg.poll_interval.max(Duration::from_millis(250));
                    while !maint_stop.load(Ordering::Relaxed) {
                        match compact_if_due(&engine, &maint_cfg) {
                            Ok(true) => {
                                maint_stats.compactions.inc();
                                if verbose {
                                    eprintln!("[watch] compacted delta segments");
                                }
                            }
                            Ok(false) => {}
                            Err(e) => {
                                maint_stats.errors.inc();
                                eprintln!("[watch] compaction error: {e}");
                            }
                        }
                        sleep_until_stopped(&maint_stop, cadence);
                    }
                })
                .expect("spawn watcher maintenance thread"),
        );

        Ok(Watcher {
            stats,
            stop,
            threads,
        })
    }

    /// The live stats block (attach to a server for `/stats` and
    /// `/metrics`).
    pub fn stats(&self) -> Arc<WatchStats> {
        self.stats.clone()
    }

    /// Stop both threads and drain the settled queue. Blocks until
    /// the in-flight poll (and final drain) finish.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Sleep `total`, waking early (≤50 ms granularity) if `stop` flips —
/// a shutdown must not wait out a long poll interval.
fn sleep_until_stopped(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(50)));
    }
}
