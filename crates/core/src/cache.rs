//! Versioned query-result cache — the serving fast path.
//!
//! The discovery workload is read-dominated and highly repetitive in
//! a multi-user setting: the same handful of popular targets are
//! ranked over and over while the lake mutates rarely. [`QueryCache`]
//! converts that repetition into sub-millisecond answers by storing
//! the **fully rendered** response body under a key that pins every
//! input the rendering depends on:
//!
//! * the 128-bit fingerprint of the target table
//!   ([`table_fingerprint`]),
//! * the requested `k`,
//! * the fingerprint of the effective [`QueryOptions`]
//!   ([`options_fingerprint`]),
//! * and the hot-swap **engine version** of the snapshot that would
//!   answer.
//!
//! The version stamp makes invalidation *exact and free*: every
//! accepted mutation (add, remove, reload) bumps the version, so a
//! stale entry simply can never be keyed again — there is no TTL, no
//! heuristic invalidation, and a hit is byte-identical to what the
//! engine would render, by construction. Compaction reorganizes disk
//! without moving the version, and correctly leaves the cache warm.
//! The worker-thread count is deliberately **excluded** from the
//! options fingerprint: the query pipeline is byte-identical at every
//! thread count (the determinism suite proves it), so thread settings
//! changing between requests must share entries.
//!
//! Concurrency: the cache is split into [`SHARDS`] independently
//! locked shards, so readers on different keys do not contend.
//! Eviction is CLOCK (second-chance) under a configurable byte
//! budget: each shard keeps its keys on a ring, a hit sets the
//! entry's referenced bit (O(1), no reordering), and an insert that
//! pushes the shard over its slice of the budget sweeps the ring —
//! giving referenced entries a second chance (bit cleared, entry
//! rotated to the back) and evicting the first unreferenced one.
//! Every sweep step either evicts an entry or retires a referenced
//! bit some hit set, so eviction work is amortized O(1) per cache
//! operation — never a scan of the shard per evicted entry.
//!
//! [`QueryOptions`]: crate::query::QueryOptions

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use d3l_lsh::hash::Fnv1a;
use d3l_table::Table;

use crate::query::QueryOptions;

/// Number of independently locked cache shards.
pub const SHARDS: usize = 16;

/// Default byte budget a serving process starts with (the CLI's
/// `--cache-bytes` and `ServerConfig::cache_bytes` override it).
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Fixed accounting overhead charged per entry on top of the body
/// bytes (key, map slot, `Arc` bookkeeping).
const ENTRY_OVERHEAD: u64 = 96;

/// Everything a cached rendering depends on. Two requests with equal
/// keys are guaranteed the same response body; the `version` member
/// is the hot-swap stamp, so mutations invalidate implicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// 128-bit target fingerprint (two independent FNV-1a streams —
    /// accidental collisions are a ~2^-128 event).
    pub target: [u64; 2],
    /// Requested result count (or ranking width).
    pub k: u64,
    /// [`options_fingerprint`] of the effective query options.
    pub opts: u64,
    /// Engine version of the snapshot that answers.
    pub version: u64,
}

impl CacheKey {
    fn shard(&self) -> usize {
        // Mix every member so keys differing only in `k`/`opts` still
        // spread; FNV over the raw words is cheap and good enough.
        let mut h = Fnv1a::new();
        for w in [
            self.target[0],
            self.target[1],
            self.k,
            self.opts,
            self.version,
        ] {
            h.write(&w.to_le_bytes());
        }
        (h.finish() % SHARDS as u64) as usize
    }
}

struct Entry {
    body: std::sync::Arc<str>,
    bytes: u64,
    /// Second-chance bit: set by every hit, cleared (once) by the
    /// clock sweep before the entry becomes evictable.
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// Clock ring: every live key occurs exactly once, in insertion
    /// order, rotated by the sweep. Keys whose entries were purged
    /// out-of-band may linger briefly; the sweep skips them for free.
    ring: std::collections::VecDeque<CacheKey>,
    bytes: u64,
    /// Total sweep steps taken by `evict_to` — the cost meter the
    /// amortized-work unit test bounds.
    scanned: u64,
}

impl Shard {
    /// Clock sweep: evict until at most `budget` bytes remain.
    /// Returns the number of entries evicted. Each step pops the ring
    /// head and either (a) drops a stale slot, (b) clears a
    /// referenced bit and rotates the entry to the back, or
    /// (c) evicts — so total work is bounded by evictions plus the
    /// referenced bits hits have set, not by `entries × evictions`.
    fn evict_to(&mut self, budget: u64) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some(key) = self.ring.pop_front() else {
                break;
            };
            self.scanned += 1;
            match self.map.get_mut(&key) {
                // Stale ring slot (entry purged out-of-band).
                None => {}
                Some(entry) if entry.referenced => {
                    entry.referenced = false;
                    self.ring.push_back(key);
                }
                Some(_) => {
                    let old = self.map.remove(&key).expect("entry checked above");
                    self.bytes -= old.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// Point-in-time cache counters, exposed by `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries removed to stay under the byte budget.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Bytes held right now (bodies plus per-entry overhead).
    pub bytes: u64,
    /// Configured byte budget (0 = disabled).
    pub budget_bytes: u64,
}

/// Bounded, sharded, version-keyed result cache. See the module docs
/// for the invalidation contract.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    budget: AtomicU64,
    /// The engine version mutations have advanced to; entries keyed
    /// at any other version are garbage and inserts at a stale
    /// version are refused (closes the race where a slow query
    /// renders against a snapshot that was swapped out mid-flight).
    live_version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl QueryCache {
    /// A cache with the given byte budget (0 disables caching: gets
    /// miss silently, puts are dropped, counters stay at zero).
    pub fn new(budget_bytes: u64) -> Self {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            budget: AtomicU64::new(budget_bytes),
            live_version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.budget.load(Ordering::Relaxed) > 0
    }

    fn shard_budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed) / SHARDS as u64
    }

    fn lock(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        // Shard state is always internally consistent between
        // operations; a poisoning panic cannot leave a torn map.
        self.shards[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Look a rendered body up. Counts a hit or a miss unless the
    /// cache is disabled (disabled lookups are silent, so hit-rate
    /// arithmetic stays meaningful).
    pub fn get(&self, key: &CacheKey) -> Option<std::sync::Arc<str>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.lock(key.shard());
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.referenced = true;
                let body = entry.body.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a rendered body. Dropped when the cache is disabled,
    /// when the key's version is no longer live, or when the body
    /// alone exceeds a whole shard's budget slice (an entry that
    /// would immediately evict everything else is not worth keeping).
    pub fn put(&self, key: CacheKey, body: std::sync::Arc<str>) {
        let shard_budget = self.shard_budget();
        if shard_budget == 0 || key.version != self.live_version.load(Ordering::Acquire) {
            return;
        }
        let bytes = body.len() as u64 + ENTRY_OVERHEAD;
        if bytes > shard_budget {
            return;
        }
        let mut shard = self.lock(key.shard());
        // A fresh key earns a ring slot; an overwrite reuses the slot
        // the key already holds (the ring never carries duplicates).
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                body,
                bytes,
                referenced: false,
            },
        ) {
            shard.bytes -= old.bytes;
        } else {
            shard.ring.push_back(key);
        }
        shard.bytes += bytes;
        let evicted = shard.evict_to(shard_budget);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Advance the live version and drop every entry keyed at any
    /// other version. Called by the hot-swap on every mutation; the
    /// scan is over whatever the byte budget holds, which a mutation
    /// (an engine clone plus a durable write) dwarfs.
    pub fn purge_stale(&self, live_version: u64) {
        self.live_version.store(live_version, Ordering::Release);
        for idx in 0..SHARDS {
            let mut shard = self.lock(idx);
            let mut freed = 0u64;
            shard.map.retain(|key, entry| {
                let keep = key.version == live_version;
                if !keep {
                    freed += entry.bytes;
                }
                keep
            });
            shard.bytes -= freed;
            // Keep the ring tight: stale slots would otherwise be
            // skipped lazily by the next sweep, which is correct but
            // lets the ring hold dead keys between mutations.
            shard.ring.retain(|key| key.version == live_version);
        }
    }

    /// Change the byte budget at runtime; shrinking evicts down to
    /// the new budget immediately, 0 disables and clears.
    pub fn set_budget(&self, budget_bytes: u64) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
        let per_shard = budget_bytes / SHARDS as u64;
        let mut evicted = 0;
        for idx in 0..SHARDS {
            evicted += self.lock(idx).evict_to(per_shard);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every entry (counters are kept; an explicit clear is an
    /// operator action, not an eviction).
    pub fn clear(&self) {
        for idx in 0..SHARDS {
            let mut shard = self.lock(idx);
            shard.map.clear();
            shard.ring.clear();
            shard.bytes = 0;
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for idx in 0..SHARDS {
            let shard = self.lock(idx);
            entries += shard.map.len() as u64;
            bytes += shard.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries,
            bytes,
            budget_bytes: self.budget.load(Ordering::Relaxed),
        }
    }
}

/// Two independent FNV-1a streams over the same feed — a cheap
/// 128-bit fingerprint. The second stream is salted so the pair never
/// degenerates into one hash written twice.
struct Fingerprint {
    a: Fnv1a,
    b: Fnv1a,
}

impl Fingerprint {
    fn new() -> Self {
        let mut b = Fnv1a::new();
        // Any fixed salt decorrelates the streams; golden-ratio bytes
        // are as good as any.
        b.write(&0x9e3779b97f4a7c15u64.to_le_bytes());
        Fingerprint { a: Fnv1a::new(), b }
    }

    fn write(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }

    /// Length-prefix a variable-length field so adjacent fields can
    /// never alias (`"ab","c"` vs `"a","bc"`).
    fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    fn finish(self) -> [u64; 2] {
        [self.a.finish(), self.b.finish()]
    }
}

/// 128-bit content fingerprint of a target table: name, column names
/// and every cell, all length-prefixed. Linear in the table size —
/// orders of magnitude cheaper than profiling the table, which is
/// what a hit skips.
pub fn table_fingerprint(table: &Table) -> [u64; 2] {
    let mut fp = Fingerprint::new();
    fp.write_str(table.name());
    fp.write(&(table.arity() as u64).to_le_bytes());
    for column in table.columns() {
        fp.write_str(column.name());
        fp.write(&(column.values().len() as u64).to_le_bytes());
        for value in column.values() {
            fp.write_str(value);
        }
    }
    fp.finish()
}

/// Fingerprint of every [`QueryOptions`] member that can change the
/// rendered result: `exclude`, `evidence`, `weights` and
/// `lookup_width`. `threads` and `trace` are excluded on purpose —
/// results are byte-identical at every thread count and tracing is
/// pure observation, so latency/observability knobs must not split
/// cache entries.
pub fn options_fingerprint(opts: &QueryOptions) -> u64 {
    let mut h = Fnv1a::new();
    match opts.exclude {
        None => h.write_byte(0),
        Some(id) => {
            h.write_byte(1);
            h.write(&(id.0 as u64).to_le_bytes());
        }
    }
    match opts.evidence {
        None => h.write_byte(0),
        Some(e) => {
            h.write_byte(1);
            h.write_byte(e.index() as u8);
        }
    }
    match &opts.weights {
        None => h.write_byte(0),
        Some(w) => {
            h.write_byte(1);
            for component in w.0 {
                h.write(&component.to_bits().to_le_bytes());
            }
        }
    }
    match opts.lookup_width {
        None => h.write_byte(0),
        Some(w) => {
            h.write_byte(1);
            h.write(&(w as u64).to_le_bytes());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Evidence;
    use d3l_table::TableId;

    fn key(n: u64, version: u64) -> CacheKey {
        CacheKey {
            target: [n, n.wrapping_mul(31)],
            k: 10,
            opts: 0,
            version,
        }
    }

    fn body(len: usize) -> std::sync::Arc<str> {
        "x".repeat(len).into()
    }

    #[test]
    fn hit_after_put_and_counters() {
        let cache = QueryCache::new(1 << 20);
        assert_eq!(cache.get(&key(1, 0)), None);
        cache.put(key(1, 0), body(100));
        assert_eq!(cache.get(&key(1, 0)).as_deref(), Some(&*body(100)));
        // Different k / opts / version are different entries.
        assert_eq!(cache.get(&CacheKey { k: 5, ..key(1, 0) }), None);
        assert_eq!(
            cache.get(&CacheKey {
                opts: 7,
                ..key(1, 0)
            }),
            None
        );
        assert_eq!(cache.get(&key(1, 1)), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes >= 100);
    }

    #[test]
    fn disabled_cache_is_silent() {
        let cache = QueryCache::new(0);
        assert!(!cache.enabled());
        cache.put(key(1, 0), body(10));
        assert_eq!(cache.get(&key(1, 0)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 0, 0));
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn eviction_respects_budget_and_recency() {
        // One shard's slice is budget/SHARDS; craft keys that land in
        // the same shard by brute force so the clock sweep is
        // observable: the touched entry's referenced bit buys it a
        // second chance, so the untouched one goes first.
        let cache = QueryCache::new((ENTRY_OVERHEAD + 200) * SHARDS as u64 * 3);
        let shard0: Vec<CacheKey> = (0..10_000u64)
            .map(|n| key(n, 0))
            .filter(|k| k.shard() == 0)
            .take(4)
            .collect();
        assert_eq!(shard0.len(), 4);
        for k in &shard0[..3] {
            cache.put(*k, body(200));
        }
        assert_eq!(cache.stats().entries, 3);
        // Touch the first so the second is now least recently used.
        assert!(cache.get(&shard0[0]).is_some());
        cache.put(shard0[3], body(200));
        assert!(cache.stats().evictions >= 1);
        assert!(cache.get(&shard0[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&shard0[0]).is_some(), "recently used survives");
        assert!(cache.get(&shard0[3]).is_some(), "new entry present");
        // Bytes never exceed the shard budget after inserts.
        let per_shard = (ENTRY_OVERHEAD + 200) * 3;
        assert!(cache.stats().bytes <= per_shard * SHARDS as u64);
    }

    #[test]
    fn eviction_work_is_amortized_constant() {
        // The old eviction rescanned the whole shard per evicted
        // entry (O(entries × evictions)); the clock sweep's total
        // steps are bounded by insertions plus the referenced bits
        // hits set, plus the entries each sweep actually evicts —
        // amortized O(1) per operation. Hammer one shard far past its
        // budget with interleaved hits and bound the meter.
        let cache = QueryCache::new((ENTRY_OVERHEAD + 200) * SHARDS as u64 * 4);
        let keys: Vec<CacheKey> = (0..100_000u64)
            .map(|n| key(n, 0))
            .filter(|k| k.shard() == 0)
            .take(256)
            .collect();
        assert_eq!(keys.len(), 256, "need 256 same-shard keys");
        let mut hits = 0u64;
        for (i, k) in keys.iter().enumerate() {
            cache.put(*k, body(200));
            // Touch an older key now and then so second chances occur.
            if i % 2 == 0 && cache.get(&keys[i / 2]).is_some() {
                hits += 1;
            }
        }
        let stats = cache.stats();
        assert!(
            stats.evictions >= 200,
            "workload must actually churn: {} evictions",
            stats.evictions
        );
        let scanned = cache.lock(0).scanned;
        let bound = keys.len() as u64 + hits + stats.evictions;
        assert!(
            scanned <= bound,
            "sweep steps ({scanned}) must stay within insertions + hits + evictions ({bound}), \
             not degrade to entries × evictions"
        );
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = QueryCache::new(SHARDS as u64 * 64);
        cache.put(key(1, 0), body(4096));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn purge_drops_stale_versions_and_guards_inserts() {
        let cache = QueryCache::new(1 << 20);
        cache.put(key(1, 0), body(10));
        cache.put(key(2, 0), body(10));
        cache.purge_stale(1);
        assert_eq!(cache.stats().entries, 0, "old-version entries dropped");
        // A slow reader trying to insert against the swapped-out
        // version is refused.
        cache.put(key(3, 0), body(10));
        assert_eq!(cache.stats().entries, 0);
        cache.put(key(3, 1), body(10));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn set_budget_shrinks_and_disables() {
        let cache = QueryCache::new(1 << 20);
        for n in 0..64 {
            cache.put(key(n, 0), body(128));
        }
        assert!(cache.stats().entries > 0);
        cache.set_budget(0);
        assert_eq!(cache.stats().entries, 0);
        assert!(!cache.enabled());
        cache.put(key(1, 0), body(10));
        assert_eq!(cache.get(&key(1, 0)), None);
    }

    #[test]
    fn clear_empties_without_counting_evictions() {
        let cache = QueryCache::new(1 << 20);
        cache.put(key(1, 0), body(10));
        let evictions_before = cache.stats().evictions;
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().evictions, evictions_before);
    }

    #[test]
    fn table_fingerprint_separates_contents() {
        let t = |name: &str, cols: &[&str], rows: &[Vec<String>]| {
            Table::from_rows(name, cols, rows).unwrap()
        };
        let base = t("a", &["x", "y"], &[vec!["1".into(), "2".into()]]);
        let fp = table_fingerprint(&base);
        assert_eq!(fp, table_fingerprint(&base.clone()), "deterministic");
        // Field-boundary aliasing: same concatenation, different split.
        let shifted = t("a", &["xy", ""], &[vec!["12".into(), "".into()]]);
        assert_ne!(fp, table_fingerprint(&shifted));
        assert_ne!(
            fp,
            table_fingerprint(&t("b", &["x", "y"], &[vec!["1".into(), "2".into()]]))
        );
        assert_ne!(
            fp,
            table_fingerprint(&t("a", &["x", "y"], &[vec!["1".into(), "3".into()]]))
        );
    }

    #[test]
    fn options_fingerprint_covers_result_affecting_members() {
        let base = QueryOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&QueryOptions::default()));
        // Threads must NOT split entries.
        assert_eq!(
            fp,
            options_fingerprint(&QueryOptions {
                threads: Some(8),
                ..Default::default()
            })
        );
        // Neither must an attached stage trace: tracing is pure
        // observation, so traced and untraced runs share entries.
        assert_eq!(
            fp,
            options_fingerprint(&QueryOptions {
                trace: Some(crate::trace::QueryTrace::new()),
                ..Default::default()
            })
        );
        assert_ne!(
            fp,
            options_fingerprint(&QueryOptions {
                exclude: Some(TableId(3)),
                ..Default::default()
            })
        );
        assert_ne!(
            fp,
            options_fingerprint(&QueryOptions {
                evidence: Some(Evidence::Value),
                ..Default::default()
            })
        );
        assert_ne!(
            fp,
            options_fingerprint(&QueryOptions {
                lookup_width: Some(40),
                ..Default::default()
            })
        );
        assert_ne!(
            fp,
            options_fingerprint(&QueryOptions {
                weights: Some(crate::weights::EvidenceWeights::uniform()),
                ..Default::default()
            })
        );
    }
}
