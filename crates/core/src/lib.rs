//! # d3l-core — Dataset Discovery in Data Lakes
//!
//! The primary contribution of the reproduced paper (Bogatu et al.,
//! ICDE 2020): given a target table and a data lake, return the
//! *k*-most related tables, where relatedness is measured by five
//! evidence types (attribute **N**ames, **V**alue tokens, **F**ormat
//! patterns, word-**E**mbeddings, and numeric **D**istributions)
//! mapped into a uniform `[0, 1]` distance space by LSH indexes.
//!
//! Pipeline:
//!
//! 1. [`profile`] — Algorithm 1: extract the set representations of
//!    every attribute in the lake;
//! 2. [`index`] — insert MinHash / random-projection signatures into
//!    the four LSH Forests `IN`, `IV`, `IF`, `IE`;
//! 3. [`query`] — look up a target's attributes, compute the five
//!    distances per candidate pair (Algorithm 2 guards the numeric
//!    KS case), aggregate column-wise with CCDF weights (Eq. 1–2) and
//!    collapse with the weighted Euclidean norm (Eq. 3);
//! 4. [`join`] — Algorithm 3: extend the top-k with SA-join paths
//!    that cover additional target attributes;
//! 5. [`metrics`] — the paper's evaluation measures (precision,
//!    recall, coverage, attribute precision).
//!
//! ```
//! use d3l_table::{DataLake, Table};
//! use d3l_core::{D3l, D3lConfig};
//!
//! let mut lake = DataLake::new();
//! lake.add(Table::from_rows("gp_funding",
//!     &["Practice", "City"],
//!     &[vec!["Blackfriars".into(), "Salford".into()]]).unwrap()).unwrap();
//!
//! let d3l = D3l::index_lake(&lake, D3lConfig::fast());
//! let target = Table::from_rows("gps",
//!     &["Practice", "City"],
//!     &[vec!["Radclife".into(), "Manchester".into()]]).unwrap();
//! let matches = d3l.query(&target, 1);
//! assert_eq!(matches.len(), 1);
//! ```

pub mod config;
pub mod distance;
pub mod evidence;
pub mod index;
pub mod join;
pub mod metrics;
pub mod populate;
pub mod profile;
pub mod query;
pub mod weights;

pub use config::D3lConfig;
pub use distance::DistanceVector;
pub use evidence::Evidence;
pub use index::{AttrRef, D3l};
pub use join::{JoinPath, SaJoinGraph};
pub use populate::Population;
pub use profile::AttributeProfile;
pub use query::{Alignment, TableMatch};
pub use weights::EvidenceWeights;
