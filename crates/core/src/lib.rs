//! # d3l-core — Dataset Discovery in Data Lakes
//!
//! The primary contribution of the reproduced paper (Bogatu et al.,
//! ICDE 2020): given a target table and a data lake, return the
//! *k*-most related tables, where relatedness is measured by five
//! evidence types (attribute **N**ames, **V**alue tokens, **F**ormat
//! patterns, word-**E**mbeddings, and numeric **D**istributions)
//! mapped into a uniform `[0, 1]` distance space by LSH indexes.
//!
//! Pipeline:
//!
//! 1. [`profile`] — Algorithm 1: extract the set representations of
//!    every attribute in the lake;
//! 2. [`index`] — insert MinHash / random-projection signatures into
//!    the four LSH Forests `IN`, `IV`, `IF`, `IE`;
//! 3. [`query`] — a three-stage pipeline: (a) *candidate generation*
//!    (the prepared target's attributes are looked up in the four
//!    forests; candidate sets are sorted by [`AttrRef::key`]),
//!    (b) *pairwise evidence scoring* (five distances per candidate
//!    pair, Algorithm 2 guarding the numeric KS case), and
//!    (c) *CCDF-weighted aggregation* (Eq. 1–2 column-wise, Eq. 3
//!    collapse). Stages (a) and (b) fan out over scoped threads
//!    (`D3lConfig::query_threads`), and [`D3l::query_batch`] fans a
//!    whole evaluation workload out over targets — profiling each
//!    target exactly once — while guaranteeing results byte-identical
//!    to the sequential path at every thread count;
//! 4. [`join`] — Algorithm 3: extend the top-k with SA-join paths
//!    that cover additional target attributes;
//! 5. [`metrics`] — the paper's evaluation measures (precision,
//!    recall, coverage, attribute precision).
//!
//! ```
//! use d3l_table::{DataLake, Table};
//! use d3l_core::{D3l, D3lConfig};
//!
//! let mut lake = DataLake::new();
//! lake.add(Table::from_rows("gp_funding",
//!     &["Practice", "City"],
//!     &[vec!["Blackfriars".into(), "Salford".into()]]).unwrap()).unwrap();
//!
//! let d3l = D3l::index_lake(&lake, D3lConfig::fast());
//! let target = Table::from_rows("gps",
//!     &["Practice", "City"],
//!     &[vec!["Radclife".into(), "Manchester".into()]]).unwrap();
//! let matches = d3l.query(&target, 1);
//! assert_eq!(matches.len(), 1);
//! ```

pub mod cache;
pub mod config;
pub mod distance;
pub mod evidence;
pub mod hotswap;
pub mod index;
pub mod join;
pub mod metrics;
pub mod populate;
pub mod profile;
pub mod query;
pub mod shard;
pub mod snapshot;
pub mod trace;
pub mod watch;
pub mod weights;

pub use cache::{options_fingerprint, table_fingerprint, CacheKey, CacheStats, QueryCache};
pub use config::D3lConfig;
pub use distance::DistanceVector;
pub use evidence::Evidence;
pub use hotswap::{EngineHandle, EngineSnapshot, EngineTelemetry, MaintenanceError};
pub use index::{AttrRef, D3l, IndexFootprint, MemoryFootprint};
pub use join::{JoinPath, SaJoinGraph};
pub use populate::Population;
pub use profile::AttributeProfile;
pub use query::{Alignment, PreparedTarget, QueryOptions, TableMatch};
pub use shard::{shard_of_name, ShardedD3l};
pub use snapshot::{DeltaRecord, IndexStore};
pub use trace::{QueryTrace, StageTimer};
pub use watch::{compact_if_due, Ingestor, WatchConfig, WatchStats, Watcher};
pub use weights::EvidenceWeights;
