//! The two weighting schemes of §III-D.
//!
//! * **CCDF weights (Eq. 2)** — per attribute-pair distance `D_i^t`,
//!   the weight is the complementary cumulative distribution function
//!   of the distance population `R_t` (all distances of type `t`
//!   between the target attribute and the lake) evaluated at `D_i^t`:
//!   the probability that the observed distance is the smallest.
//! * **Evidence weights (Eq. 3)** — the relative importance of the
//!   five evidence types, taken from the coefficients of a logistic
//!   regression trained on related/unrelated table pairs.

use serde::{Deserialize, Serialize};

use d3l_ml::LogisticRegression;

use crate::distance::DistanceVector;

/// CCDF weight of one observed distance within its population
/// (Eq. 2): `w = 1 - P(d <= D)`, computed with a `+1` smoothing so the
/// single-element population still yields a usable weight and ties do
/// not collapse the Eq. 1 denominator to zero.
pub fn ccdf_weight(observed: f64, population: &[f64]) -> f64 {
    if population.is_empty() {
        return 1.0;
    }
    let le = population.iter().filter(|&&d| d <= observed).count();
    1.0 - le as f64 / (population.len() + 1) as f64
}

/// Smoothing mass pulling Eq. 1 toward the maximal distance when all
/// aligned pairs carry low CCDF weight. Eq. 2's stated purpose is "to
/// compensate for the presence of a potentially high number of weakly
/// related attributes": a distance that ties with most of its
/// population (e.g. a 4-value categorical column matching every other
/// table with the same domain) gets weight ≈ 0 and must not dominate
/// the aggregate just because it is the only measurement — without a
/// prior, a single-row table pair would cancel its own weight in the
/// ratio.
pub const AGGREGATE_PRIOR: f64 = 0.1;

/// Eq. 1: weighted average of one evidence type's distances over the
/// aligned attribute pairs of a `(target, source)` table pair.
/// `pairs` holds `(distance, ccdf_weight)` per aligned pair.
pub fn aggregate_evidence(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let wsum: f64 = pairs.iter().map(|(_, w)| w).sum();
    let num: f64 = pairs.iter().map(|(d, w)| d * w).sum();
    (num + AGGREGATE_PRIOR) / (wsum + AGGREGATE_PRIOR)
}

/// The evidence-type weights of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvidenceWeights(pub [f64; 5]);

impl EvidenceWeights {
    /// Uniform weights (the ablation baseline).
    pub fn uniform() -> Self {
        EvidenceWeights([1.0; 5])
    }

    /// The default trained weights shipped with the library, obtained
    /// by running `experiments weights` (logistic regression over the
    /// synthetic benchmark's ground truth, as §III-D prescribes):
    /// value and embedding evidence dominate, format is weakest —
    /// matching the paper's Experiment 1 observation that format alone
    /// "is not sufficiently discriminating".
    pub fn trained_default() -> Self {
        EvidenceWeights([0.85, 1.55, 0.35, 1.10, 0.55])
    }

    /// Derive weights from a trained relatedness classifier: the
    /// paper uses "the coefficients of the resulting model as the
    /// respective weights in Eq. 3". Features are *distances*, so
    /// related pairs push coefficients negative; the weight of an
    /// evidence type is the magnitude of its (negative) coefficient,
    /// floored at a small positive value so no evidence is discarded
    /// outright.
    pub fn from_model(model: &LogisticRegression) -> Self {
        assert_eq!(
            model.weights().len(),
            5,
            "model must have five distance features"
        );
        let mut w = [0.0; 5];
        for (i, &c) in model.weights().iter().enumerate() {
            w[i] = (-c).max(0.05);
        }
        EvidenceWeights(w)
    }

    /// Eq. 3: the weighted L2 norm of a table-pair distance vector,
    /// normalized so the result stays in `[0, 1]`.
    pub fn combined_distance(&self, dv: &DistanceVector) -> f64 {
        let wsum: f64 = self.0.iter().sum();
        if wsum <= 0.0 {
            return dv.mean();
        }
        let num: f64 = self
            .0
            .iter()
            .zip(&dv.0)
            .map(|(&w, &d)| (w * d) * (w * d))
            .sum();
        // Normalize by the maximum attainable value (all distances 1)
        // so the combined distance is bounded by 1.
        let max: f64 = self.0.iter().map(|&w| w * w).sum();
        (num / max).sqrt()
    }
}

impl Default for EvidenceWeights {
    fn default() -> Self {
        EvidenceWeights::trained_default()
    }
}

/// Train Eq. 3 weights from labelled table-pair distance vectors
/// (§III-D steps 1–3).
pub fn train_evidence_weights(
    vectors: &[DistanceVector],
    related: &[bool],
) -> (EvidenceWeights, LogisticRegression) {
    assert_eq!(vectors.len(), related.len());
    let xs: Vec<Vec<f64>> = vectors.iter().map(|v| v.0.to_vec()).collect();
    let model = LogisticRegression::train(&xs, related);
    (EvidenceWeights::from_model(&model), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Evidence;

    #[test]
    fn ccdf_weight_ranks_small_distances_high() {
        let pop = [0.1, 0.2, 0.3, 0.4, 0.5];
        let w_best = ccdf_weight(0.1, &pop);
        let w_worst = ccdf_weight(0.5, &pop);
        assert!(w_best > w_worst);
        assert!(w_best > 0.8);
        assert!(w_worst < 0.2);
        assert!((0.0..=1.0).contains(&w_best));
    }

    #[test]
    fn ccdf_weight_empty_population() {
        assert_eq!(ccdf_weight(0.3, &[]), 1.0);
    }

    #[test]
    fn ccdf_ties_keep_positive_denominator() {
        let pop = [0.5, 0.5, 0.5];
        let w = ccdf_weight(0.5, &pop);
        assert!(w > 0.0, "smoothing keeps weight positive");
    }

    #[test]
    fn aggregate_weighted_average() {
        // strong pair (0.1, weight 0.9), weak pair (0.9, weight 0.1):
        // aggregate leans toward 0.1.
        let agg = aggregate_evidence(&[(0.1, 0.9), (0.9, 0.1)]);
        assert!(agg < 0.35);
        assert_eq!(aggregate_evidence(&[]), 1.0);
        // all-zero weights degrade to the prior (maximal distance)
        let agg0 = aggregate_evidence(&[(0.2, 0.0), (0.4, 0.0)]);
        assert!((agg0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_weight_single_rows_are_damped() {
        // A lone tie-with-everyone row (small distance, near-zero
        // weight) must not produce a small aggregate.
        let uninformative = aggregate_evidence(&[(0.16, 0.02)]);
        let informative = aggregate_evidence(&[(0.16, 0.95)]);
        assert!(uninformative > 0.8, "got {uninformative}");
        assert!(informative < 0.3, "got {informative}");
    }

    #[test]
    fn combined_distance_bounds() {
        let w = EvidenceWeights::trained_default();
        assert!(w.combined_distance(&DistanceVector([0.0; 5])).abs() < 1e-12);
        assert!((w.combined_distance(&DistanceVector([1.0; 5])) - 1.0).abs() < 1e-12);
        let mid = w.combined_distance(&DistanceVector([0.5; 5]));
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn combined_distance_respects_weights() {
        let w = EvidenceWeights([0.0, 1.0, 0.0, 0.0, 0.0].map(|x: f64| x.max(1e-9)));
        let mut close_v = DistanceVector::max_distant();
        close_v.set(Evidence::Value, 0.0);
        let mut close_n = DistanceVector::max_distant();
        close_n.set(Evidence::Name, 0.0);
        // V-dominant weights: V-close pair must rank closer.
        assert!(w.combined_distance(&close_v) < w.combined_distance(&close_n));
    }

    #[test]
    fn training_recovers_discriminative_evidence() {
        // Value distance alone separates related from unrelated.
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let noise = (i % 10) as f64 / 20.0;
            vectors.push(DistanceVector([0.5, 0.1 + noise * 0.2, 0.5, 0.3, 0.9]));
            labels.push(true);
            vectors.push(DistanceVector([0.5, 0.9 - noise * 0.2, 0.5, 0.7, 0.9]));
            labels.push(false);
        }
        let (w, model) = train_evidence_weights(&vectors, &labels);
        // V coefficient strongly negative → large weight.
        assert!(w.0[Evidence::Value.index()] > w.0[Evidence::Format.index()]);
        // Model itself classifies the training data well.
        let correct = vectors
            .iter()
            .zip(&labels)
            .filter(|(v, &y)| model.predict(&v.0) == y)
            .count();
        assert!(correct as f64 / vectors.len() as f64 > 0.9);
    }

    #[test]
    fn uniform_weights() {
        let u = EvidenceWeights::uniform();
        assert!(u.0.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }
}
