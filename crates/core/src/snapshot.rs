//! Persistent engine snapshots and the on-disk index store.
//!
//! The paper's cost model (Experiment 4) assumes indexing is paid
//! once and amortized across many queries; this module is what makes
//! that amortization real. A [`D3l`] serializes into a versioned,
//! checksummed container ([`D3l::to_snapshot_bytes`]) holding the four
//! committed LSH forests, every attribute profile, the embedder state
//! and the configuration — and loads back ([`D3l::from_snapshot_bytes`])
//! into a query-ready engine with **no re-profiling and no re-sorting**.
//!
//! On top of the base snapshot, [`IndexStore`] manages a directory:
//!
//! ```text
//! <dir>/base.d3ls           full snapshot (atomic tmp + rename)
//! <dir>/delta-000001.d3ld   appended add/remove segment
//! <dir>/delta-000002.d3ld   ...
//! ```
//!
//! Lake maintenance profiles **only the delta**: an added table's
//! profiles are computed once, patched into the live forests
//! (re-committing only the touched trees) and persisted as an
//! append-only delta segment carrying the profiles themselves — so
//! replaying the segment on the next cold start derives the identical
//! signatures without re-reading the CSV. [`IndexStore::compact`]
//! folds accumulated deltas into a fresh base snapshot.
//!
//! Because `LshForest` inserts commute with [`LshForest::commit`]
//! into a total order, an engine that adds tables incrementally —
//! live or by delta replay — is bit-identical to one rebuilt from
//! scratch over the extended lake, which the store tests assert.
//!
//! [`LshForest::commit`]: d3l_lsh::forest::LshForest::commit

use std::path::{Path, PathBuf};

use d3l_embedding::SemanticEmbedder;
use d3l_lsh::forest::LshForest;
use d3l_lsh::minhash::{MinHashSignature, MinHasher};
use d3l_lsh::randproj::{BitSignature, RandomProjector};
use d3l_lsh::TokenSet;
use d3l_store::{
    layout, ContainerReader, ContainerWriter, Decoder, Encoder, SectionTag, StoreError, KIND_DELTA,
    KIND_SNAPSHOT,
};
use d3l_table::{Table, TableId};

use crate::config::D3lConfig;
use crate::index::D3l;
use crate::profile::AttributeProfile;

/// Filename of the base snapshot inside an index directory
/// (re-exported from the store layout, which owns the directory
/// vocabulary).
pub use d3l_store::layout::BASE_FILE;

const SEC_CONFIG: SectionTag = *b"CONF";
const SEC_EMBEDDER: SectionTag = *b"EMBD";
const SEC_TABLES: SectionTag = *b"TABL";
const SEC_PROFILES: SectionTag = *b"PROF";
const SEC_FOREST_N: SectionTag = *b"F_IN";
const SEC_FOREST_V: SectionTag = *b"F_IV";
const SEC_FOREST_F: SectionTag = *b"F_IF";
const SEC_FOREST_E: SectionTag = *b"F_IE";
const SEC_DELTA_RECORD: SectionTag = *b"DREC";
/// Store bookkeeping appended to base files by [`IndexStore`]: the
/// delta sequence number the base already contains ("applied
/// through"). Replay skips segments at or below it, so a compact
/// interrupted between writing the new base and deleting the folded
/// segments can never apply a delta twice.
const SEC_APPLIED: SectionTag = *b"SEQN";

// ---------------------------------------------------------------- config

fn encode_config(cfg: &D3lConfig, enc: &mut Encoder) {
    enc.put_varint(cfg.num_perm as u64);
    enc.put_varint(cfg.embed_bits as u64);
    enc.put_varint(cfg.embed_dim as u64);
    enc.put_varint(cfg.trees as u64);
    enc.put_f64(cfg.threshold);
    enc.put_varint(cfg.q as u64);
    enc.put_varint(cfg.lookup_factor as u64);
    enc.put_varint(cfg.min_lookup as u64);
    enc.put_f64(cfg.join_threshold);
    enc.put_varint(cfg.max_join_depth as u64);
    enc.put_u64(cfg.seed);
    enc.put_varint(cfg.index_threads as u64);
    enc.put_varint(cfg.query_threads as u64);
    // Appended after the original 13 fields so pre-sharding readers
    // of this writer's snapshots fail loudly (trailing bytes) rather
    // than silently, and this reader accepts pre-sharding snapshots
    // (absent field = 1 shard).
    enc.put_varint(cfg.shards as u64);
}

fn decode_config(dec: &mut Decoder<'_>) -> Result<D3lConfig, StoreError> {
    let cfg = D3lConfig {
        num_perm: dec.get_varint()? as usize,
        embed_bits: dec.get_varint()? as usize,
        embed_dim: dec.get_varint()? as usize,
        trees: dec.get_varint()? as usize,
        threshold: dec.get_f64()?,
        q: dec.get_varint()? as usize,
        lookup_factor: dec.get_varint()? as usize,
        min_lookup: dec.get_varint()? as usize,
        join_threshold: dec.get_f64()?,
        max_join_depth: dec.get_varint()? as usize,
        seed: dec.get_u64()?,
        index_threads: dec.get_varint()? as usize,
        query_threads: dec.get_varint()? as usize,
        // Optional trailing field: snapshots written before sharding
        // end here and mean one monolithic shard.
        shards: if dec.is_exhausted() {
            1
        } else {
            dec.get_varint()? as usize
        },
    };
    if cfg.num_perm == 0 || cfg.embed_bits == 0 || cfg.embed_dim == 0 || cfg.trees == 0 {
        return Err(StoreError::corrupt("config with zero-sized index shape"));
    }
    if cfg.shards == 0 {
        return Err(StoreError::corrupt("config with zero shards"));
    }
    if cfg.num_perm < cfg.trees || cfg.embed_bits < cfg.trees {
        return Err(StoreError::corrupt(
            "config signature lengths shorter than the tree count",
        ));
    }
    Ok(cfg)
}

// --------------------------------------------------------------- profiles

fn encode_profile(p: &AttributeProfile, enc: &mut Encoder) {
    enc.put_str(&p.name);
    enc.put_u64s(p.qset.as_slice());
    enc.put_u64s(p.tset.as_slice());
    enc.put_u64s(p.rset.as_slice());
    enc.put_f64s(&p.embedding);
    enc.put_f64s(&p.numeric_extent);
    enc.put_u8(p.is_numeric as u8);
}

fn decode_profile(dec: &mut Decoder<'_>, embed_dim: usize) -> Result<AttributeProfile, StoreError> {
    let name = dec.get_str()?;
    // The stored vecs are already sorted + deduplicated; from_hashes
    // re-normalizes, which is idempotent on valid data and repairs
    // (rather than trusts) corrupt orderings.
    let qset = TokenSet::from_hashes(dec.get_u64s()?);
    let tset = TokenSet::from_hashes(dec.get_u64s()?);
    let rset = TokenSet::from_hashes(dec.get_u64s()?);
    let embedding = dec.get_f64s()?;
    if embedding.len() != embed_dim {
        return Err(StoreError::corrupt(format!(
            "profile {name:?} embedding has {} dims, config says {embed_dim}",
            embedding.len()
        )));
    }
    let numeric_extent = dec.get_f64s()?;
    let is_numeric = match dec.get_u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(StoreError::corrupt(format!(
                "profile numeric flag must be 0/1, found {other}"
            )))
        }
    };
    Ok(AttributeProfile {
        name,
        qset,
        tset,
        rset,
        embedding,
        numeric_extent,
        is_numeric,
    })
}

fn encode_profiles(profiles: &[AttributeProfile]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_varint(profiles.len() as u64);
    for p in profiles {
        encode_profile(p, &mut enc);
    }
    enc.into_bytes()
}

fn decode_profiles(bytes: &[u8], embed_dim: usize) -> Result<Vec<AttributeProfile>, StoreError> {
    let mut dec = Decoder::new(bytes);
    let n = dec.get_len(8, "profile list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_profile(&mut dec, embed_dim)?);
    }
    dec.expect_exhausted("profile list")?;
    Ok(out)
}

// --------------------------------------------------------------- snapshot

impl D3l {
    /// Serialize the full engine state into one snapshot container.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_writer().finish()
    }

    /// The engine's snapshot sections, left open so the store can
    /// append bookkeeping sections (the delta watermark) before
    /// finishing the container.
    fn snapshot_writer(&self) -> ContainerWriter {
        let mut w = ContainerWriter::new(KIND_SNAPSHOT);

        let mut conf = Encoder::new();
        encode_config(&self.cfg, &mut conf);
        w.add_section(SEC_CONFIG, conf.into_bytes());
        w.add_section(SEC_EMBEDDER, self.embedder.to_bytes());

        let mut tabl = Encoder::new();
        tabl.put_varint(self.names.len() as u64);
        for i in 0..self.names.len() {
            tabl.put_str(&self.names[i]);
            tabl.put_varint(self.arities[i] as u64);
            match self.subjects[i] {
                Some(c) => {
                    tabl.put_u8(1);
                    tabl.put_varint(c as u64);
                }
                None => tabl.put_u8(0),
            }
            tabl.put_u8(self.removed[i] as u8);
        }
        w.add_section(SEC_TABLES, tabl.into_bytes());

        let mut prof = Encoder::new();
        for table_profiles in &self.profiles {
            prof.put_bytes(&encode_profiles(table_profiles));
        }
        w.add_section(SEC_PROFILES, prof.into_bytes());

        w.add_section(SEC_FOREST_N, self.i_n.to_bytes());
        w.add_section(SEC_FOREST_V, self.i_v.to_bytes());
        w.add_section(SEC_FOREST_F, self.i_f.to_bytes());
        w.add_section(SEC_FOREST_E, self.i_e.to_bytes());
        w
    }

    /// Load a query-ready engine from snapshot bytes. The hashers are
    /// reconstructed deterministically from the persisted config, the
    /// forests arrive committed (no re-sort) and the profiles carry
    /// their token hashes — nothing is re-profiled, which is what
    /// makes cold starts orders of magnitude cheaper than a rebuild.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let reader = ContainerReader::parse(bytes, KIND_SNAPSHOT)?;

        let mut conf_dec = Decoder::new(reader.section(SEC_CONFIG)?);
        let cfg = decode_config(&mut conf_dec)?;
        conf_dec.expect_exhausted("config")?;

        let embedder = SemanticEmbedder::from_bytes(reader.section(SEC_EMBEDDER)?)?;
        if embedder.lexicon().dim() != cfg.embed_dim {
            return Err(StoreError::corrupt(format!(
                "embedder dim {} does not match config dim {}",
                embedder.lexicon().dim(),
                cfg.embed_dim
            )));
        }

        let mut tabl = Decoder::new(reader.section(SEC_TABLES)?);
        let count = tabl.get_len(3, "table list")?;
        let mut names = Vec::with_capacity(count);
        let mut arities = Vec::with_capacity(count);
        let mut subjects = Vec::with_capacity(count);
        let mut removed = Vec::with_capacity(count);
        for _ in 0..count {
            names.push(tabl.get_str()?);
            let arity = tabl.get_varint()? as usize;
            let subject = match tabl.get_u8()? {
                0 => None,
                1 => Some(tabl.get_varint()? as u32),
                other => {
                    return Err(StoreError::corrupt(format!(
                        "subject flag must be 0/1, found {other}"
                    )))
                }
            };
            if let Some(c) = subject {
                if c as usize >= arity {
                    return Err(StoreError::corrupt(format!(
                        "subject column {c} outside arity {arity}"
                    )));
                }
            }
            let is_removed = tabl.get_u8()? != 0;
            arities.push(arity);
            subjects.push(subject);
            removed.push(is_removed);
        }
        tabl.expect_exhausted("table list")?;

        let mut prof = Decoder::new(reader.section(SEC_PROFILES)?);
        let mut profiles = Vec::with_capacity(count);
        for (i, &arity) in arities.iter().enumerate() {
            let table_profiles = decode_profiles(prof.get_bytes()?, cfg.embed_dim)?;
            if table_profiles.len() != arity {
                return Err(StoreError::corrupt(format!(
                    "table {i} has {} profiles for arity {arity}",
                    table_profiles.len()
                )));
            }
            profiles.push(table_profiles);
        }
        prof.expect_exhausted("profiles")?;

        let i_n = LshForest::<MinHashSignature>::from_bytes(reader.section(SEC_FOREST_N)?)?;
        let i_v = LshForest::<MinHashSignature>::from_bytes(reader.section(SEC_FOREST_V)?)?;
        let i_f = LshForest::<MinHashSignature>::from_bytes(reader.section(SEC_FOREST_F)?)?;
        let i_e = LshForest::<BitSignature>::from_bytes(reader.section(SEC_FOREST_E)?)?;
        for (name, forest) in [("IN", &i_n), ("IV", &i_v), ("IF", &i_f)] {
            if forest.shape() != (cfg.trees, cfg.num_perm / cfg.trees) {
                return Err(StoreError::corrupt(format!(
                    "forest {name} shape {:?} does not match the config",
                    forest.shape()
                )));
            }
        }
        if i_e.shape() != (cfg.trees, cfg.embed_bits / cfg.trees) {
            return Err(StoreError::corrupt(format!(
                "forest IE shape {:?} does not match the config",
                i_e.shape()
            )));
        }
        for (name, committed) in [
            ("IN", i_n.is_committed()),
            ("IV", i_v.is_committed()),
            ("IF", i_f.is_committed()),
            ("IE", i_e.is_committed()),
        ] {
            if !committed {
                return Err(StoreError::corrupt(format!(
                    "forest {name} was snapshotted uncommitted"
                )));
            }
        }
        // Every indexed item must name a live (table, column) the
        // query pipeline can dereference — an out-of-range key would
        // decode fine here and panic on the first query that draws it
        // as a candidate.
        let check_ids = |name: &str, ids: &mut dyn Iterator<Item = u64>| {
            for id in ids {
                let attr = crate::index::AttrRef::from_key(id);
                let t = attr.table.index();
                if t >= arities.len() || attr.column as usize >= arities[t] {
                    return Err(StoreError::corrupt(format!(
                        "forest {name} indexes attribute {attr:?} outside the table list"
                    )));
                }
            }
            Ok(())
        };
        check_ids("IN", &mut i_n.ids())?;
        check_ids("IV", &mut i_v.ids())?;
        check_ids("IF", &mut i_f.ids())?;
        check_ids("IE", &mut i_e.ids())?;

        let minhasher = MinHasher::new(cfg.num_perm, cfg.seed);
        let projector = RandomProjector::new(cfg.embed_dim, cfg.embed_bits, cfg.seed ^ 0xee);
        Ok(D3l {
            cfg,
            embedder,
            minhasher,
            projector,
            i_n,
            i_v,
            i_f,
            i_e,
            profiles,
            subjects,
            names,
            arities,
            removed,
        })
    }
}

// ----------------------------------------------------------------- deltas

/// One persisted maintenance operation.
#[derive(Debug, Clone)]
pub enum DeltaRecord {
    /// A table added to the lake, carrying the profiles computed when
    /// it was added live — replay re-derives signatures from them
    /// instead of re-profiling the raw table.
    Add {
        /// Table name.
        name: String,
        /// Subject-attribute column, if classified.
        subject: Option<u32>,
        /// Per-column profiles.
        profiles: Vec<AttributeProfile>,
    },
    /// A table removed from the lake (its id becomes a tombstone).
    Remove {
        /// The removed table.
        table: TableId,
    },
    /// A table added at an explicit id. Shard delta chains use this
    /// instead of [`DeltaRecord::Add`]: ids are allocated globally
    /// across the shard set, so a shard's next local slot index says
    /// nothing about the id the table must land on. Replay pads the
    /// gap with holes (see `D3l::push_hole`) and inserts at exactly
    /// `table`.
    AddAt {
        /// The globally-allocated table id.
        table: TableId,
        /// Table name.
        name: String,
        /// Subject-attribute column, if classified.
        subject: Option<u32>,
        /// Per-column profiles.
        profiles: Vec<AttributeProfile>,
    },
}

impl DeltaRecord {
    fn to_bytes(&self, embed_dim: usize) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            DeltaRecord::Add {
                name,
                subject,
                profiles,
            } => {
                debug_assert!(
                    profiles.iter().all(|p| p.embedding.len() == embed_dim),
                    "profiles must match the engine dimensionality"
                );
                enc.put_u8(1);
                enc.put_str(name);
                match subject {
                    Some(c) => {
                        enc.put_u8(1);
                        enc.put_varint(*c as u64);
                    }
                    None => enc.put_u8(0),
                }
                enc.put_bytes(&encode_profiles(profiles));
            }
            DeltaRecord::Remove { table } => {
                enc.put_u8(2);
                enc.put_varint(table.0 as u64);
            }
            DeltaRecord::AddAt {
                table,
                name,
                subject,
                profiles,
            } => {
                debug_assert!(
                    profiles.iter().all(|p| p.embedding.len() == embed_dim),
                    "profiles must match the engine dimensionality"
                );
                enc.put_u8(3);
                enc.put_varint(table.0 as u64);
                enc.put_str(name);
                match subject {
                    Some(c) => {
                        enc.put_u8(1);
                        enc.put_varint(*c as u64);
                    }
                    None => enc.put_u8(0),
                }
                enc.put_bytes(&encode_profiles(profiles));
            }
        }
        enc.into_bytes()
    }

    fn from_bytes(bytes: &[u8], embed_dim: usize) -> Result<Self, StoreError> {
        let mut dec = Decoder::new(bytes);
        let record = match dec.get_u8()? {
            1 => {
                let (name, subject, profiles) = Self::decode_add_fields(&mut dec, embed_dim)?;
                DeltaRecord::Add {
                    name,
                    subject,
                    profiles,
                }
            }
            2 => DeltaRecord::Remove {
                table: Self::decode_table_id(&mut dec)?,
            },
            3 => {
                let table = Self::decode_table_id(&mut dec)?;
                let (name, subject, profiles) = Self::decode_add_fields(&mut dec, embed_dim)?;
                DeltaRecord::AddAt {
                    table,
                    name,
                    subject,
                    profiles,
                }
            }
            other => {
                return Err(StoreError::corrupt(format!(
                    "unknown delta record type {other}"
                )))
            }
        };
        dec.expect_exhausted("delta record")?;
        Ok(record)
    }

    fn decode_table_id(dec: &mut Decoder<'_>) -> Result<TableId, StoreError> {
        Ok(TableId(u32::try_from(dec.get_varint()?).map_err(|_| {
            StoreError::corrupt("delta table id exceeds u32")
        })?))
    }

    /// The shared payload of `Add` and `AddAt`: name, subject flag,
    /// profile block.
    #[allow(clippy::type_complexity)]
    fn decode_add_fields(
        dec: &mut Decoder<'_>,
        embed_dim: usize,
    ) -> Result<(String, Option<u32>, Vec<AttributeProfile>), StoreError> {
        let name = dec.get_str()?;
        let subject = match dec.get_u8()? {
            0 => None,
            1 => Some(dec.get_varint()? as u32),
            other => {
                return Err(StoreError::corrupt(format!(
                    "delta subject flag must be 0/1, found {other}"
                )))
            }
        };
        let profiles = decode_profiles(dec.get_bytes()?, embed_dim)?;
        if let Some(c) = subject {
            if c as usize >= profiles.len() {
                return Err(StoreError::corrupt(format!(
                    "delta subject column {c} outside arity {}",
                    profiles.len()
                )));
            }
        }
        Ok((name, subject, profiles))
    }
}

impl D3l {
    /// Apply one replayed maintenance record, patching the forests
    /// exactly as the original live operation did.
    pub fn apply_delta(&mut self, record: DeltaRecord) -> Result<(), StoreError> {
        match record {
            DeltaRecord::Add {
                name,
                subject,
                profiles,
            } => {
                self.insert_profiled_table(name, subject, profiles);
                Ok(())
            }
            DeltaRecord::Remove { table } => {
                if table.index() >= self.table_count() {
                    return Err(StoreError::corrupt(format!(
                        "delta removes unknown table {table}"
                    )));
                }
                self.remove_table(table);
                Ok(())
            }
            DeltaRecord::AddAt {
                table,
                name,
                subject,
                profiles,
            } => {
                if table.index() < self.table_count() {
                    return Err(StoreError::corrupt(format!(
                        "delta adds table {table} at an already-occupied slot"
                    )));
                }
                while self.table_count() < table.index() {
                    self.push_hole();
                }
                let got = self.insert_profiled_table(name, subject, profiles);
                debug_assert_eq!(got, table);
                Ok(())
            }
        }
    }
}

// ------------------------------------------------------------ index store

/// A directory-backed persistent index: one base snapshot plus
/// append-only delta segments, with explicit compaction.
///
/// The store assumes a **single writer** per directory (the usual
/// embedded-store contract): `append_add`/`append_remove`/`compact`
/// from two processes at once are not coordinated. Writing a delta
/// segment refuses to replace an existing one, so a seq collision
/// from a second writer surfaces as an error rather than silently
/// dropping the first writer's acknowledged operation.
#[derive(Debug)]
pub struct IndexStore {
    dir: PathBuf,
    next_delta_seq: u64,
    /// Delta sequence already folded into the base snapshot; segments
    /// at or below it are stale leftovers of an interrupted compact.
    applied_through: u64,
}

impl IndexStore {
    /// Persist `d3l` as a fresh store in `dir` (created if missing;
    /// any stale delta segments and orphaned tmp files from a
    /// previous store are removed). The base file is written durably
    /// (write + fsync to a tmp file, rename, fsync the directory), so
    /// a crash mid-save leaves either the old or the new snapshot,
    /// never a torn one.
    pub fn create(dir: impl AsRef<Path>, d3l: &D3l) -> Result<IndexStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Self::sweep_tmp(&dir)?;
        for path in Self::delta_paths(&dir)? {
            std::fs::remove_file(path)?;
        }
        let mut store = IndexStore {
            dir,
            next_delta_seq: 1,
            applied_through: 0,
        };
        store.write_base(d3l, 0)?;
        Ok(store)
    }

    /// Open an existing store: load the base snapshot, then replay
    /// delta segments above the base's applied-through watermark in
    /// sequence order (segments at or below it were already folded in
    /// by a compact whose cleanup did not finish — replaying them
    /// would apply the operation twice). Returns the store handle and
    /// the query-ready engine.
    ///
    /// A segment that fails to read, decode or apply — a zero-length
    /// or truncated file, a bit flip, a record naming an unknown
    /// table — surfaces as [`StoreError::BadSegment`] carrying the
    /// segment's sequence number, so the diagnostic names the file to
    /// inspect instead of a raw decode error.
    pub fn open(dir: impl AsRef<Path>) -> Result<(IndexStore, D3l), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        Self::sweep_tmp(&dir)?;
        let base = std::fs::read(dir.join(BASE_FILE))?;
        let applied_through = Self::applied_through(&base)?;
        let mut d3l = D3l::from_snapshot_bytes(&base)?;
        let mut store = IndexStore {
            dir,
            next_delta_seq: applied_through + 1,
            applied_through,
        };
        store.replay_newer(&mut d3l)?;
        Ok((store, d3l))
    }

    /// Re-scan the directory and apply every delta segment above this
    /// handle's replayed-through watermark to `d3l`, in sequence
    /// order, advancing the watermark only when the whole pass
    /// succeeds. Idempotent over repeated calls: segments at or below
    /// the watermark are never re-read, so calling this on a live
    /// engine applies exactly the operations another writer appended
    /// since the last call. This is the replay half of reload-latest;
    /// callers decide staleness *and* replay under one store lock so a
    /// writer appending between the two is picked up here rather than
    /// silently deferred. Returns the number of segments applied; on
    /// error `d3l` may hold a partial replay and must be discarded.
    pub fn replay_newer(&mut self, d3l: &mut D3l) -> Result<usize, StoreError> {
        let pending = Self::pending_deltas(&self.dir, self.replayed_through())?;
        let mut applied = 0usize;
        let mut through = self.replayed_through();
        for (seq, path) in pending {
            let replay = |d3l: &mut D3l| -> Result<(), StoreError> {
                let bytes = std::fs::read(&path)?;
                let reader = ContainerReader::parse(&bytes, KIND_DELTA)?;
                let record = DeltaRecord::from_bytes(
                    reader.section(SEC_DELTA_RECORD)?,
                    d3l.config().embed_dim,
                )?;
                d3l.apply_delta(record)
            };
            replay(d3l).map_err(|e| StoreError::bad_segment(seq, e))?;
            through = seq;
            applied += 1;
        }
        self.next_delta_seq = through + 1;
        Ok(applied)
    }

    /// The applied-through watermark of a base snapshot (0 when the
    /// section is absent).
    fn applied_through(base: &[u8]) -> Result<u64, StoreError> {
        let reader = ContainerReader::parse(base, KIND_SNAPSHOT)?;
        match reader.section_opt(SEC_APPLIED)? {
            Some(payload) => {
                let mut dec = Decoder::new(payload);
                let seq = dec.get_varint()?;
                dec.expect_exhausted("applied-through watermark")?;
                Ok(seq)
            }
            None => Ok(0),
        }
    }

    /// Profile and index one new table, persisting the operation as a
    /// delta segment. Only the added table is profiled — the rest of
    /// the engine is untouched apart from the forest patch.
    pub fn append_add(&mut self, d3l: &mut D3l, table: &Table) -> Result<TableId, StoreError> {
        let id = d3l.add_table(table);
        let record = DeltaRecord::Add {
            name: d3l.table_name(id).to_string(),
            subject: d3l.subject_of(id).map(|a| a.column),
            profiles: d3l.profiles[id.index()].clone(),
        };
        self.write_delta(&record, d3l.config().embed_dim)?;
        Ok(id)
    }

    /// [`IndexStore::append_add`] at an explicit, globally-allocated
    /// table id (shard stores — see `DeltaRecord::AddAt`). Pads the
    /// engine's slot vector with holes up to `id`, so `id` must be at
    /// or above the engine's current slot count.
    pub fn append_add_at(
        &mut self,
        d3l: &mut D3l,
        table: &Table,
        id: TableId,
    ) -> Result<TableId, StoreError> {
        let id = d3l.add_table_at(table, id);
        let record = DeltaRecord::AddAt {
            table: id,
            name: d3l.table_name(id).to_string(),
            subject: d3l.subject_of(id).map(|a| a.column),
            profiles: d3l.profiles[id.index()].clone(),
        };
        self.write_delta(&record, d3l.config().embed_dim)?;
        Ok(id)
    }

    /// Remove a table, persisting the tombstone as a delta segment.
    /// Returns whether the id named a live table (nothing is written
    /// otherwise).
    pub fn append_remove(&mut self, d3l: &mut D3l, id: TableId) -> Result<bool, StoreError> {
        if !d3l.remove_table(id) {
            return Ok(false);
        }
        self.write_delta(&DeltaRecord::Remove { table: id }, d3l.config().embed_dim)?;
        Ok(true)
    }

    /// Fold the delta segments *this handle has observed* into a
    /// fresh base snapshot of the current engine state, then delete
    /// them. Cold starts after a compact load one file and replay
    /// nothing (of the folded range). The new base records the folded
    /// watermark *before* the segments are deleted, so a crash (or a
    /// failed delete) between the two steps leaves stale segments
    /// that the next open skips rather than re-applies; sequence
    /// numbers are never reused.
    ///
    /// Segments **above** the watermark — appended by another writer
    /// (a CLI `d3l add` beside a serving process) and not yet
    /// replayed into this engine — are *not* part of this engine's
    /// state, so they are left on disk for a later replay or
    /// reload-latest rather than deleted: compacting must never
    /// discard an acknowledged write this handle has not folded in.
    /// Returns the number of segments actually folded.
    pub fn compact(&mut self, d3l: &D3l) -> Result<usize, StoreError> {
        let through = self.next_delta_seq - 1;
        let mut folded = 0usize;
        let mut remove: Vec<PathBuf> = Vec::new();
        for (seq, path, _) in layout::scan(&self.dir)?.deltas {
            if seq <= through {
                // Stale segments at or below the previous watermark
                // were folded by an earlier (interrupted) compact;
                // they are cleaned up but not counted again.
                folded += usize::from(seq > self.applied_through);
                remove.push(path);
            }
        }
        self.write_base(d3l, through)?;
        self.applied_through = through;
        for path in remove {
            std::fs::remove_file(path)?;
        }
        Ok(folded)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest delta sequence this handle has observed: segments it
    /// replayed on open plus segments it appended since.
    pub fn replayed_through(&self) -> u64 {
        self.next_delta_seq - 1
    }

    /// Roll the replayed-through watermark back to `through` — the
    /// reload path's recovery when a *later* shard's replay fails and
    /// the already-replayed shards never get swapped in: their
    /// segments must count as unreplayed again or they would be
    /// invisible to every future reload.
    pub(crate) fn rewind_replayed_through(&mut self, through: u64) {
        debug_assert!(
            through <= self.replayed_through(),
            "rewind must not advance the watermark"
        );
        self.next_delta_seq = through + 1;
    }

    /// Whether the directory holds delta segments this handle has not
    /// replayed — i.e. another writer (a CLI `d3l add` next to a
    /// serving process) appended to the store since it was opened. A
    /// cheap directory scan; no file is opened. The serving layer
    /// polls this to decide whether a reload-latest would observe
    /// anything new.
    pub fn has_newer_segments(&self) -> Result<bool, StoreError> {
        Ok(layout::scan(&self.dir)?.latest_seq() > self.replayed_through())
    }

    /// Number of delta segments awaiting compaction (stale segments
    /// below the folded watermark are leftovers of an interrupted
    /// compact and do not count — replay skips them).
    pub fn delta_count(&self) -> Result<usize, StoreError> {
        Ok(Self::pending_deltas(&self.dir, self.applied_through)?.len())
    }

    /// On-disk footprint in bytes: `(base snapshot, pending delta
    /// segments)`.
    pub fn disk_bytes(&self) -> Result<(u64, u64), StoreError> {
        let base = std::fs::metadata(self.dir.join(BASE_FILE))?.len();
        let mut deltas = 0;
        for (_, path) in Self::pending_deltas(&self.dir, self.applied_through)? {
            deltas += std::fs::metadata(path)?.len();
        }
        Ok((base, deltas))
    }

    fn write_base(&mut self, d3l: &D3l, applied_through: u64) -> Result<(), StoreError> {
        let mut w = d3l.snapshot_writer();
        let mut seq = Encoder::new();
        seq.put_varint(applied_through);
        w.add_section(SEC_APPLIED, seq.into_bytes());
        self.persist(BASE_FILE, &w.finish(), true)
    }

    fn write_delta(&mut self, record: &DeltaRecord, embed_dim: usize) -> Result<(), StoreError> {
        let mut w = ContainerWriter::new(KIND_DELTA);
        w.add_section(SEC_DELTA_RECORD, record.to_bytes(embed_dim));
        let name = layout::delta_file_name(self.next_delta_seq);
        self.persist(&name, &w.finish(), false)?;
        self.next_delta_seq += 1;
        Ok(())
    }

    /// Durable atomic write: the bytes are fsynced in a tmp file,
    /// renamed over the final name, and the directory entry is
    /// fsynced — a crash at any point leaves either the old file or
    /// the complete new one, never a torn or empty rename target.
    /// With `overwrite` false (delta segments), an already-existing
    /// target is an error: segments are append-only, and a sequence
    /// collision means a second writer is mutating the same store.
    fn persist(&self, name: &str, bytes: &[u8], overwrite: bool) -> Result<(), StoreError> {
        use std::io::Write;
        let target = self.dir.join(name);
        if !overwrite && target.exists() {
            return Err(StoreError::corrupt(format!(
                "{name} already exists — another writer is using this store"
            )));
        }
        let tmp = self.dir.join(format!("{name}.tmp.{}", std::process::id()));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, target)?;
        std::fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// All delta segment paths, in replay order (by parsed sequence
    /// number — a lexicographic path sort would misorder segments
    /// once sequences outgrow the 6-digit zero padding).
    fn delta_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        Ok(layout::scan(dir)?
            .deltas
            .into_iter()
            .map(|(_, path, _)| path)
            .collect())
    }

    /// Delta segments still awaiting replay/compaction: those above
    /// the folded watermark, `(seq, path)` in replay order. Only
    /// well-formed segment names this store's layout wrote get
    /// replayed.
    fn pending_deltas(dir: &Path, applied_through: u64) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        Ok(layout::scan(dir)?
            .deltas
            .into_iter()
            .filter(|(seq, ..)| *seq > applied_through)
            .map(|(seq, path, _)| (seq, path))
            .collect())
    }

    /// Remove orphaned `*.tmp.<pid>` files left by a writer that
    /// crashed between creating and renaming one — but **only** when
    /// the orphanhood is provable. A tmp file matching the store
    /// naming may equally be another process's atomic write in flight
    /// *right now* (created, fsyncing, about to rename); deleting it
    /// would destroy that writer's bytes and fail its rename. So a
    /// tmp file is swept only if the pid embedded in its name is
    /// provably dead, or its mtime is older than
    /// [`IndexStore::STALE_TMP_AGE`] (no atomic write is in flight
    /// for that long; this also collects leftovers whose pid was
    /// recycled by an unrelated live process).
    fn sweep_tmp(dir: &Path) -> Result<(), StoreError> {
        Self::sweep_tmp_older_than(dir, Self::STALE_TMP_AGE)
    }

    /// Age beyond which an atomic-write tmp file cannot still be in
    /// flight: persist() writes, fsyncs and renames in one call, so
    /// minutes-old tmp files are orphans regardless of pid liveness.
    pub const STALE_TMP_AGE: std::time::Duration = std::time::Duration::from_secs(600);

    /// [`IndexStore::sweep_tmp`] with an explicit staleness horizon
    /// (exposed for failure-injection tests; `open`/`create` use
    /// [`IndexStore::STALE_TMP_AGE`]).
    #[doc(hidden)]
    pub fn sweep_tmp_older_than(
        dir: &Path,
        stale_after: std::time::Duration,
    ) -> Result<(), StoreError> {
        for entry in std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()? {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !layout::is_store_tmp(name) {
                continue;
            }
            let dead_writer = layout::tmp_pid_of(name).is_some_and(layout::pid_is_dead);
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age >= stale_after);
            if dead_writer || stale {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::AttrRef;
    use d3l_table::DataLake;

    fn lake() -> DataLake {
        let mut lake = DataLake::new();
        for (name, cols, rows) in [
            (
                "gp_funding",
                vec!["Practice", "City", "Payment"],
                vec![
                    vec!["Blackfriars", "Salford", "15530"],
                    vec!["The London Clinic", "London", "73648"],
                ],
            ),
            (
                "gp_practices",
                vec!["Practice Name", "Postcode", "Patients"],
                vec![
                    vec!["Blackfriars", "M3 6AF", "3572"],
                    vec!["Dr E Cullen", "BT7 1JL", "1202"],
                ],
            ),
            (
                "planets",
                vec!["Planet", "Moons"],
                vec![vec!["Saturn", "146"], vec!["Jupiter", "95"]],
            ),
        ] {
            let rows: Vec<Vec<String>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect();
            lake.add(Table::from_rows(name, &cols, &rows).unwrap())
                .unwrap();
        }
        lake
    }

    fn engine() -> D3l {
        D3l::index_lake(&lake(), D3lConfig::fast())
    }

    fn assert_engines_identical(a: &D3l, b: &D3l) {
        assert_eq!(a.table_count(), b.table_count());
        assert_eq!(a.byte_size(), b.byte_size(), "memory footprints differ");
        assert_eq!(a.i_n.tree_arrays(), b.i_n.tree_arrays());
        assert_eq!(a.i_v.tree_arrays(), b.i_v.tree_arrays());
        assert_eq!(a.i_f.tree_arrays(), b.i_f.tree_arrays());
        assert_eq!(a.i_e.tree_arrays(), b.i_e.tree_arrays());
        for t in 0..a.table_count() {
            let id = TableId(t as u32);
            assert_eq!(a.table_name(id), b.table_name(id));
            assert_eq!(a.table_arity(id), b.table_arity(id));
            assert_eq!(a.subject_of(id), b.subject_of(id));
            assert_eq!(a.is_removed(id), b.is_removed(id));
        }
    }

    #[test]
    fn snapshot_round_trip_restores_the_engine() {
        let d3l = engine();
        let bytes = d3l.to_snapshot_bytes();
        let loaded = D3l::from_snapshot_bytes(&bytes).unwrap();
        assert_engines_identical(&d3l, &loaded);
        // Query parity on a fresh target.
        let target = Table::from_rows(
            "t",
            &["Practice", "City"],
            &[vec!["Blackfriars".into(), "Salford".into()]],
        )
        .unwrap();
        let a = d3l.query(&target, 3);
        let b = loaded.query(&target, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
        // Snapshot encoding is deterministic.
        assert_eq!(bytes, loaded.to_snapshot_bytes());
    }

    #[test]
    fn snapshot_rejects_corruption_with_typed_errors() {
        let bytes = engine().to_snapshot_bytes();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            D3l::from_snapshot_bytes(&bad),
            Err(StoreError::BadMagic { .. })
        ));
        // Version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            D3l::from_snapshot_bytes(&bad),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        // Payload bit flip.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 3] ^= 0x10;
        assert!(matches!(
            D3l::from_snapshot_bytes(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Truncation anywhere must be typed, never a panic.
        for cut in [0, 7, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                D3l::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn store_lifecycle_add_compact_reload_matches_rebuild() {
        let dir = std::env::temp_dir().join(format!("d3l_store_core_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lake = lake();
        let extra = Table::from_rows(
            "local_gps",
            &["GP", "Location"],
            &[vec!["Blackfriars".into(), "Salford".into()]],
        )
        .unwrap();

        // Build on two tables, persist, then add the third + extra via
        // the store.
        let mut two = DataLake::new();
        two.add(lake.table(TableId(0)).clone()).unwrap();
        two.add(lake.table(TableId(1)).clone()).unwrap();
        let mut d3l = D3l::index_lake(&two, D3lConfig::fast());
        let mut store = IndexStore::create(&dir, &d3l).unwrap();
        store.append_add(&mut d3l, lake.table(TableId(2))).unwrap();
        store.append_add(&mut d3l, &extra).unwrap();
        assert_eq!(store.delta_count().unwrap(), 2);

        // Reopen replays the deltas into an identical engine.
        let (_, reopened) = IndexStore::open(&dir).unwrap();
        assert_engines_identical(&d3l, &reopened);

        // Compact folds the deltas; a fresh open still matches, and it
        // matches a from-scratch rebuild over the extended lake.
        store.compact(&d3l).unwrap();
        assert_eq!(store.delta_count().unwrap(), 0);
        let (_, compacted) = IndexStore::open(&dir).unwrap();
        assert_engines_identical(&d3l, &compacted);
        let mut full = lake.clone();
        full.add(extra).unwrap();
        let rebuilt = D3l::index_lake(&full, D3lConfig::fast());
        assert_engines_identical(&rebuilt, &compacted);

        let (base, deltas) = store.disk_bytes().unwrap();
        assert!(base > 0);
        assert_eq!(deltas, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_persists_and_tombstones() {
        let dir = std::env::temp_dir().join(format!("d3l_store_rm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d3l = engine();
        let mut store = IndexStore::create(&dir, &d3l).unwrap();
        assert!(store.append_remove(&mut d3l, TableId(2)).unwrap());
        assert!(
            !store.append_remove(&mut d3l, TableId(2)).unwrap(),
            "double remove is a no-op"
        );
        assert!(d3l.is_removed(TableId(2)));
        assert_eq!(d3l.live_table_count(), 2);
        assert_eq!(d3l.table_count(), 3, "ids stay stable");
        assert!(!d3l.name_to_id().contains_key("planets"));

        // The removed table's attributes left every forest.
        let gone = AttrRef {
            table: TableId(2),
            column: 0,
        };
        assert!(d3l.i_n.signature(gone.key()).is_none());

        // Replay and compaction both preserve the tombstone.
        let (_, reopened) = IndexStore::open(&dir).unwrap();
        assert_engines_identical(&d3l, &reopened);
        store.compact(&d3l).unwrap();
        let (_, compacted) = IndexStore::open(&dir).unwrap();
        assert_engines_identical(&d3l, &compacted);

        // Queries no longer surface the tombstoned table.
        let target = Table::from_rows(
            "t",
            &["Planet", "Moons"],
            &[vec!["Saturn".into(), "146".into()]],
        )
        .unwrap();
        for m in compacted.query(&target, 5) {
            assert_ne!(m.table, TableId(2), "tombstoned table surfaced");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_compact_never_replays_folded_deltas() {
        // Simulate a crash between compact()'s base write and its
        // segment deletion: the folded segment is still on disk, but
        // the base's applied-through watermark must keep open() from
        // applying it a second time.
        let dir = std::env::temp_dir().join(format!("d3l_store_crash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d3l = engine();
        let mut store = IndexStore::create(&dir, &d3l).unwrap();
        let extra = Table::from_rows(
            "late_arrival",
            &["GP", "Location"],
            &[vec!["Blackfriars".into(), "Salford".into()]],
        )
        .unwrap();
        store.append_add(&mut d3l, &extra).unwrap();

        let delta = dir.join("delta-000001.d3ld");
        let folded_segment = std::fs::read(&delta).unwrap();
        store.compact(&d3l).unwrap();
        // The crash: the folded segment reappears (was never deleted).
        std::fs::write(&delta, folded_segment).unwrap();

        let (mut reopened_store, reopened) = IndexStore::open(&dir).unwrap();
        assert_engines_identical(&d3l, &reopened);
        assert_eq!(
            reopened
                .name_to_id()
                .keys()
                .filter(|n| **n == "late_arrival")
                .count(),
            1,
            "the folded add must not be applied twice"
        );
        // Sequence numbers are never reused: the next segment lands
        // above the stale one instead of colliding with it.
        let mut after = reopened;
        let extra2 = Table::from_rows("even_later", &["X"], &[vec!["y".into()]]).unwrap();
        reopened_store.append_add(&mut after, &extra2).unwrap();
        assert!(dir.join("delta-000002.d3ld").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_preserves_segments_from_an_external_writer() {
        // A serving handle compacts while a second writer (CLI `d3l
        // add` beside the server) has appended a segment the handle
        // never replayed. Compaction must fold only its own range —
        // deleting the external segment would silently destroy an
        // acknowledged durable write.
        let dir = std::env::temp_dir().join(format!("d3l_store_ext_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d3l = engine();
        let mut store = IndexStore::create(&dir, &d3l).unwrap();
        let own = Table::from_rows("own_add", &["X"], &[vec!["a".into()]]).unwrap();
        store.append_add(&mut d3l, &own).unwrap();

        // The external writer opens its own handle and appends.
        let (mut other_store, mut other_engine) = IndexStore::open(&dir).unwrap();
        let external = Table::from_rows("external_add", &["Y"], &[vec!["b".into()]]).unwrap();
        other_store
            .append_add(&mut other_engine, &external)
            .unwrap();
        assert!(store.has_newer_segments().unwrap());

        // Compact folds only the handle's own segment (seq 1).
        assert_eq!(store.compact(&d3l).unwrap(), 1);
        assert!(
            dir.join(d3l_store::layout::delta_file_name(2)).exists(),
            "the external segment must survive compaction"
        );

        // A fresh open replays the surviving external segment on top
        // of the compacted base: nothing was lost.
        let (_, reopened) = IndexStore::open(&dir).unwrap();
        assert!(reopened.name_to_id().contains_key("own_add"));
        assert!(reopened.name_to_id().contains_key("external_add"));
        assert_engines_identical(&other_engine, &reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_store_is_io_error() {
        assert!(matches!(
            IndexStore::open("/definitely/not/a/store"),
            Err(StoreError::Io(_))
        ));
    }
}
