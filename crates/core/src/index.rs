//! The four LSH indexes and their construction (Algorithm 1).
//!
//! [`D3l`] owns everything needed to answer discovery queries over a
//! lake: the `IN`, `IV`, `IF` (MinHash) and `IE` (random projection)
//! LSH Forests, the attribute profiles (kept for exact distances, the
//! guarded KS computation and join-overlap checks), and each table's
//! subject attribute.
//!
//! Index construction profiles tables in parallel (std scoped
//! threads over table chunks) — profiling and signature generation
//! dominate, as the paper observes for all three compared systems
//! (Experiment 4) — then bulk-builds the four forests concurrently
//! (one scoped thread per forest, per-tree parallel sorts inside
//! each; see [`LshForest::build_from`]). Profiles store hashed token
//! sets, so signatures are derived from the stored hashes in one pass
//! with no re-tokenization, and the built index is byte-identical at
//! every thread count.

use std::collections::HashMap;

use d3l_embedding::{CachedEmbedder, Lexicon, SemanticEmbedder};
use d3l_lsh::forest::LshForest;
use d3l_lsh::minhash::{MinHashSignature, MinHasher};
use d3l_lsh::randproj::{BitSignature, RandomProjector};
use d3l_lsh::ItemId;
use d3l_ml::SubjectClassifier;
use d3l_table::{DataLake, Table, TableId};

use crate::config::D3lConfig;
use crate::profile::{profile_table, AttributeProfile};

/// A reference to one attribute of one table in the lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Owning table.
    pub table: TableId,
    /// Column index within the table.
    pub column: u32,
}

impl AttrRef {
    /// Widest column index that survives [`AttrRef::key`] packing
    /// (the low 24 bits of the item id).
    pub const MAX_COLUMN: u32 = (1 << 24) - 1;

    /// Pack into the `u64` item id the LSH indexes use.
    ///
    /// The column occupies the low 24 bits; a column index beyond
    /// [`AttrRef::MAX_COLUMN`] would silently corrupt the table bits,
    /// so packing asserts the invariant in debug builds.
    pub fn key(self) -> ItemId {
        debug_assert!(
            self.column <= Self::MAX_COLUMN,
            "AttrRef column {} exceeds the 24-bit packing limit",
            self.column
        );
        ((self.table.0 as u64) << 24) | (self.column & Self::MAX_COLUMN) as u64
    }

    /// Unpack from an LSH item id.
    pub fn from_key(key: ItemId) -> Self {
        AttrRef {
            table: TableId((key >> 24) as u32),
            column: (key & Self::MAX_COLUMN as u64) as u32,
        }
    }
}

/// Signatures of one attribute across the four indexes.
#[derive(Debug, Clone)]
pub(crate) struct AttrSignatures {
    pub name: MinHashSignature,
    pub value: MinHashSignature,
    pub format: MinHashSignature,
    pub embedding: BitSignature,
}

/// Borrowed view of one attribute's stored signatures as raw arena
/// word slices — the stage-2 scoring hot path resolves every
/// candidate through this instead of cloning ~6 KB of signature data
/// per scored pair ([`D3l::stored_signatures`] stays for the cold
/// paths that need ownership). The target side of a scored pair is
/// always an owned signature, so similarity runs through its
/// `*_words` kernels directly against the forest arenas.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AttrSigsRef<'a> {
    pub name: &'a [u64],
    pub value: &'a [u64],
    pub format: &'a [u64],
    pub embedding: &'a [u64],
}

/// Stand-in signatures for attributes absent from `IV`/`IE` (numeric
/// attributes store no value or embedding signature): the empty-set
/// MinHash and the zero-vector projection. Deterministic functions of
/// the hashers, computed **once per query** by the scoring stages —
/// the historical per-pair fallback re-signed the zero vector (256
/// hyperplanes × `embed_dim` multiplies) for every numeric candidate
/// scored.
#[derive(Debug, Clone)]
pub(crate) struct SigFallbacks {
    pub empty_value: MinHashSignature,
    pub zero_embedding: BitSignature,
}

/// The indexed data lake: D3L's discovery state.
///
/// `Clone` is deliberate and cheap relative to a rebuild: the serving
/// layer's copy-on-write hot-swap ([`crate::hotswap::EngineHandle`])
/// clones the engine, applies a mutation to the clone, and atomically
/// swaps it in so concurrent readers keep their consistent snapshot.
#[derive(Clone)]
pub struct D3l {
    pub(crate) cfg: D3lConfig,
    pub(crate) embedder: SemanticEmbedder,
    pub(crate) minhasher: MinHasher,
    pub(crate) projector: RandomProjector,
    /// `IN` — attribute-name q-gram index.
    pub(crate) i_n: LshForest<MinHashSignature>,
    /// `IV` — value-token index.
    pub(crate) i_v: LshForest<MinHashSignature>,
    /// `IF` — format-pattern index.
    pub(crate) i_f: LshForest<MinHashSignature>,
    /// `IE` — embedding index.
    pub(crate) i_e: LshForest<BitSignature>,
    /// Per-table attribute profiles.
    pub(crate) profiles: Vec<Vec<AttributeProfile>>,
    /// Per-table subject attribute (None when no textual column).
    pub(crate) subjects: Vec<Option<u32>>,
    /// Table names, parallel to ids.
    pub(crate) names: Vec<String>,
    /// Per-table arity, parallel to ids.
    pub(crate) arities: Vec<usize>,
    /// Tombstones: ids stay stable across removals, so a removed
    /// table keeps its slot (emptied) and is skipped everywhere.
    pub(crate) removed: Vec<bool>,
}

impl std::fmt::Debug for D3l {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("D3l")
            .field("tables", &self.table_count())
            .field("live_tables", &self.live_table_count())
            .finish_non_exhaustive()
    }
}

impl D3l {
    /// Index a lake with a lexicon-free embedder (pure subword
    /// hashing). Use [`D3l::index_lake_with`] to supply a domain
    /// lexicon.
    pub fn index_lake(lake: &DataLake, cfg: D3lConfig) -> Self {
        let embedder = SemanticEmbedder::new(Lexicon::new(cfg.embed_dim));
        Self::index_lake_with(lake, cfg, embedder)
    }

    /// Index a lake with the supplied word-embedding model.
    pub fn index_lake_with(lake: &DataLake, cfg: D3lConfig, embedder: SemanticEmbedder) -> Self {
        assert_eq!(
            embedder.lexicon().dim(),
            cfg.embed_dim,
            "embedder/config dim mismatch"
        );
        let minhasher = MinHasher::new(cfg.num_perm, cfg.seed);
        let projector = RandomProjector::new(cfg.embed_dim, cfg.embed_bits, cfg.seed ^ 0xee);
        let classifier = SubjectClassifier::default_model();

        // Parallel profiling + signature generation over table chunks.
        let tables: Vec<(TableId, &Table)> = lake.iter().collect();
        let threads = cfg.effective_threads().min(tables.len().max(1));
        let chunk = tables.len().div_ceil(threads.max(1)).max(1);
        type ProfiledTable = (
            TableId,
            Vec<AttributeProfile>,
            Vec<AttrSignatures>,
            Option<u32>,
        );
        let mut results: Vec<ProfiledTable> = Vec::with_capacity(tables.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for batch in tables.chunks(chunk) {
                let embedder = &embedder;
                let minhasher = &minhasher;
                let projector = &projector;
                let classifier = &classifier;
                let cfg = &cfg;
                handles.push(scope.spawn(move || {
                    // Per-worker embedding memo: domain vocabulary
                    // recurs across a batch's columns, and cached
                    // vectors are identical to fresh ones, so results
                    // stay thread-count-invariant.
                    let cached = CachedEmbedder::new(embedder);
                    batch
                        .iter()
                        .map(|(id, table)| {
                            let profiles = profile_table(table, cfg.q, &cached);
                            let sigs = profiles
                                .iter()
                                .map(|p| sign_profile(p, minhasher, projector))
                                .collect::<Vec<_>>();
                            let subject = classifier.subject_of(table).map(|i| i as u32);
                            (*id, profiles, sigs, subject)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("profiling worker panicked"));
            }
        });
        results.sort_by_key(|(id, ..)| *id);

        // Partition the signatures into per-forest item lists
        // (Algorithm 1 lines 15–18, with the §III-C rule that numeric
        // attributes skip IV and IE), then bulk-build the four
        // forests concurrently. Item lists are assembled in table-id
        // order and each forest sorts total orders, so the built
        // index is identical at every thread count.
        let attr_count: usize = results.iter().map(|(_, p, ..)| p.len()).sum();
        let mut n_items = Vec::with_capacity(attr_count);
        let mut v_items = Vec::with_capacity(attr_count);
        let mut f_items = Vec::with_capacity(attr_count);
        let mut e_items = Vec::with_capacity(attr_count);
        let mut profiles = Vec::with_capacity(results.len());
        let mut subjects = Vec::with_capacity(results.len());
        let mut names = Vec::with_capacity(results.len());
        let mut arities = Vec::with_capacity(results.len());

        for (id, table_profiles, sigs, subject) in results {
            for (col, sig) in sigs.into_iter().enumerate() {
                let key = AttrRef {
                    table: id,
                    column: col as u32,
                }
                .key();
                n_items.push((key, sig.name));
                f_items.push((key, sig.format));
                if !table_profiles[col].is_numeric {
                    v_items.push((key, sig.value));
                    e_items.push((key, sig.embedding));
                }
            }
            names.push(lake.table(id).name().to_string());
            arities.push(table_profiles.len());
            profiles.push(table_profiles);
            subjects.push(subject);
        }

        // Build the forests concurrently within the configured thread
        // budget (the profiling fan-out above clamps to the table
        // count; forest construction uses the raw budget): 4+ workers
        // get one thread per forest with the leftover budget fanning
        // each forest's tree sorts out, 2–3 workers pair the forests
        // up, and 1 worker builds sequentially.
        let budget = cfg.effective_threads();
        let (i_n, i_v, i_f, i_e) = if budget >= 4 {
            let sort_threads = (budget / 4).max(1);
            std::thread::scope(|scope| {
                let h_n = scope.spawn(|| {
                    LshForest::build_from(cfg.num_perm, cfg.trees, n_items, sort_threads)
                });
                let h_v = scope.spawn(|| {
                    LshForest::build_from(cfg.num_perm, cfg.trees, v_items, sort_threads)
                });
                let h_f = scope.spawn(|| {
                    LshForest::build_from(cfg.num_perm, cfg.trees, f_items, sort_threads)
                });
                let h_e = scope.spawn(|| {
                    LshForest::build_from(cfg.embed_bits, cfg.trees, e_items, sort_threads)
                });
                (
                    h_n.join().expect("IN build worker panicked"),
                    h_v.join().expect("IV build worker panicked"),
                    h_f.join().expect("IF build worker panicked"),
                    h_e.join().expect("IE build worker panicked"),
                )
            })
        } else if budget > 1 {
            std::thread::scope(|scope| {
                let h_nf = scope.spawn(|| {
                    (
                        LshForest::build_from(cfg.num_perm, cfg.trees, n_items, 1),
                        LshForest::build_from(cfg.num_perm, cfg.trees, f_items, 1),
                    )
                });
                let h_ve = scope.spawn(|| {
                    (
                        LshForest::build_from(cfg.num_perm, cfg.trees, v_items, 1),
                        LshForest::build_from(cfg.embed_bits, cfg.trees, e_items, 1),
                    )
                });
                let (i_n, i_f) = h_nf.join().expect("IN/IF build worker panicked");
                let (i_v, i_e) = h_ve.join().expect("IV/IE build worker panicked");
                (i_n, i_v, i_f, i_e)
            })
        } else {
            (
                LshForest::build_from(cfg.num_perm, cfg.trees, n_items, 1),
                LshForest::build_from(cfg.num_perm, cfg.trees, v_items, 1),
                LshForest::build_from(cfg.num_perm, cfg.trees, f_items, 1),
                LshForest::build_from(cfg.embed_bits, cfg.trees, e_items, 1),
            )
        };

        let removed = vec![false; names.len()];
        D3l {
            cfg,
            embedder,
            minhasher,
            projector,
            i_n,
            i_v,
            i_f,
            i_e,
            profiles,
            subjects,
            names,
            arities,
            removed,
        }
    }

    /// Incrementally index one more table (data lakes grow; Goods-style
    /// systems reindex continuously). The forests are re-committed
    /// before returning, so queries keep taking `&self`. Returns the
    /// id the table would have in a lake extended by it; the caller
    /// keeps the authoritative lake.
    pub fn add_table(&mut self, table: &Table) -> TableId {
        let cached = CachedEmbedder::new(&self.embedder);
        let profiles = profile_table(table, self.cfg.q, &cached);
        let classifier = SubjectClassifier::default_model();
        let subject = classifier.subject_of(table).map(|i| i as u32);
        self.insert_profiled_table(table.name().to_string(), subject, profiles)
    }

    /// The shared tail of [`D3l::add_table`] and the delta-segment
    /// replay path: insert an already-profiled table. Signatures are
    /// derived from the profiles' stored token hashes, so replaying a
    /// persisted delta (which carries the profiles) patches the
    /// forests bit-identically to the original `add_table` call.
    pub(crate) fn insert_profiled_table(
        &mut self,
        name: String,
        subject: Option<u32>,
        profiles: Vec<AttributeProfile>,
    ) -> TableId {
        let id = TableId(self.profiles.len() as u32);
        for (col, p) in profiles.iter().enumerate() {
            let sig = sign_profile(p, &self.minhasher, &self.projector);
            let key = AttrRef {
                table: id,
                column: col as u32,
            }
            .key();
            self.i_n.insert(key, sig.name);
            self.i_f.insert(key, sig.format);
            if !p.is_numeric {
                self.i_v.insert(key, sig.value);
                self.i_e.insert(key, sig.embedding);
            }
        }
        // Re-commit within the configured budget: each forest's tree
        // re-sorts fan out in turn (results are identical at any
        // thread count; see LshForest::commit_parallel).
        let threads = self.cfg.effective_threads();
        self.i_n.commit_parallel(threads);
        self.i_v.commit_parallel(threads);
        self.i_f.commit_parallel(threads);
        self.i_e.commit_parallel(threads);
        self.names.push(name);
        self.arities.push(profiles.len());
        self.subjects.push(subject);
        self.profiles.push(profiles);
        self.removed.push(false);
        id
    }

    /// Append an empty, permanently-tombstoned slot.
    ///
    /// The sharded engine keys every shard by *global* table id: a
    /// shard's slot vector is dense over `0..=max_owned_id` with
    /// holes at the ids other shards own. A hole is encoded with the
    /// means the snapshot format already has — `removed = true` with
    /// an empty name and arity 0 — so per-shard snapshots, deltas and
    /// compaction all work unchanged. Holes are distinguishable from
    /// real removal tombstones because tombstones keep their table
    /// name for display.
    pub(crate) fn push_hole(&mut self) {
        self.names.push(String::new());
        self.arities.push(0);
        self.subjects.push(None);
        self.profiles.push(Vec::new());
        self.removed.push(true);
    }

    /// Whether a slot is a non-owned hole (see [`D3l::push_hole`]) as
    /// opposed to a live table or a real removal tombstone.
    pub(crate) fn is_hole(&self, id: TableId) -> bool {
        let idx = id.index();
        idx < self.removed.len() && self.removed[idx] && self.names[idx].is_empty()
    }

    /// [`D3l::add_table`] at an explicit table id: pad holes up to
    /// `id`, then insert. Used by shards, whose local slot vectors
    /// are sparse views of the global id space — the id is chosen
    /// globally and must land on a slot this engine has never used.
    /// Panics if `id` is below the current slot count.
    pub(crate) fn add_table_at(&mut self, table: &Table, id: TableId) -> TableId {
        assert!(
            id.index() >= self.table_count(),
            "add_table_at id {id} collides with an existing slot"
        );
        while self.table_count() < id.index() {
            self.push_hole();
        }
        let got = self.add_table(table);
        debug_assert_eq!(got, id);
        got
    }

    /// Drop a table from the index (the maintenance counterpart of
    /// [`D3l::add_table`]). Its attributes leave all four forests —
    /// dropping entries preserves each tree's sort, so no re-commit is
    /// needed — and the id becomes a tombstone: ids of other tables
    /// never shift, the slot keeps its name for display, and
    /// [`D3l::table_count`] still counts it (use
    /// [`D3l::live_table_count`] for the serving population). Returns
    /// whether the id named a live table.
    pub fn remove_table(&mut self, id: TableId) -> bool {
        let idx = id.index();
        if idx >= self.profiles.len() || self.removed[idx] {
            return false;
        }
        for col in 0..self.arities[idx] {
            let key = AttrRef {
                table: id,
                column: col as u32,
            }
            .key();
            self.i_n.remove(key);
            self.i_v.remove(key);
            self.i_f.remove(key);
            self.i_e.remove(key);
        }
        self.profiles[idx] = Vec::new();
        self.arities[idx] = 0;
        self.subjects[idx] = None;
        self.removed[idx] = true;
        true
    }

    /// Whether an id is a removal tombstone.
    pub fn is_removed(&self, id: TableId) -> bool {
        self.removed.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of tables still serving (total slots minus tombstones).
    pub fn live_table_count(&self) -> usize {
        self.removed.iter().filter(|&&r| !r).count()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &D3lConfig {
        &self.cfg
    }

    /// Change the query-pipeline worker count (0 = all available
    /// CPUs) without re-indexing. Thread count never changes query
    /// results — only latency — so this is safe to flip at any time.
    pub fn set_query_threads(&mut self, threads: usize) {
        self.cfg.query_threads = threads;
    }

    /// Number of indexed tables.
    pub fn table_count(&self) -> usize {
        self.profiles.len()
    }

    /// Name of an indexed table.
    pub fn table_name(&self, id: TableId) -> &str {
        &self.names[id.index()]
    }

    /// Arity of an indexed table.
    pub fn table_arity(&self, id: TableId) -> usize {
        self.arities[id.index()]
    }

    /// Profile of one attribute.
    pub fn profile(&self, attr: AttrRef) -> &AttributeProfile {
        &self.profiles[attr.table.index()][attr.column as usize]
    }

    /// Subject attribute of an indexed table, if any.
    pub fn subject_of(&self, id: TableId) -> Option<AttrRef> {
        self.subjects[id.index()].map(|c| AttrRef {
            table: id,
            column: c,
        })
    }

    /// The word embedder used at indexing (targets must be profiled
    /// with the same one).
    pub fn embedder(&self) -> &SemanticEmbedder {
        &self.embedder
    }

    /// Profile and sign a query-side table with this index's hashers.
    pub(crate) fn profile_and_sign(
        &self,
        table: &Table,
    ) -> (Vec<AttributeProfile>, Vec<AttrSignatures>) {
        let cached = CachedEmbedder::new(&self.embedder);
        let profiles = profile_table(table, self.cfg.q, &cached);
        let sigs = profiles
            .iter()
            .map(|p| sign_profile(p, &self.minhasher, &self.projector))
            .collect();
        (profiles, sigs)
    }

    /// The per-query fallback signatures ([`SigFallbacks`]); identical
    /// across shards of one engine (the hashers are seed-derived from
    /// the shared config).
    pub(crate) fn sig_fallbacks(&self) -> SigFallbacks {
        SigFallbacks {
            empty_value: self.minhasher.sign_hashed(&[]),
            zero_embedding: self.projector.sign(&vec![0.0; self.cfg.embed_dim]),
        }
    }

    /// Borrowed stored signatures of an indexed attribute — the
    /// zero-copy resolution the pairwise scoring stage uses (every
    /// attribute is in `IN`/`IF`; numeric ones are absent from
    /// `IV`/`IE` and resolve to the caller's precomputed fallbacks).
    pub(crate) fn stored_signatures_ref<'a>(
        &'a self,
        attr: AttrRef,
        fallbacks: &'a SigFallbacks,
    ) -> AttrSigsRef<'a> {
        let key = attr.key();
        AttrSigsRef {
            name: self
                .i_n
                .signature_words(key)
                .expect("attribute not indexed"),
            format: self
                .i_f
                .signature_words(key)
                .expect("attribute not indexed"),
            value: self
                .i_v
                .signature_words(key)
                .unwrap_or_else(|| fallbacks.empty_value.words()),
            embedding: self
                .i_e
                .signature_words(key)
                .unwrap_or_else(|| fallbacks.zero_embedding.words()),
        }
    }

    /// Stored signatures of an indexed attribute, cloned into an owned
    /// struct (every attribute is in `IN`/`IF`; numeric ones are
    /// absent from `IV`/`IE`). Cold paths only — the scoring stages
    /// use [`D3l::stored_signatures_ref`].
    pub(crate) fn stored_signatures(&self, attr: AttrRef) -> AttrSignatures {
        let key = attr.key();
        let name = self.i_n.signature(key).expect("attribute not indexed");
        let format = self.i_f.signature(key).expect("attribute not indexed");
        let value = self
            .i_v
            .signature(key)
            .unwrap_or_else(|| self.minhasher.sign_hashed(&[]));
        let embedding = self
            .i_e
            .signature(key)
            .unwrap_or_else(|| self.projector.sign(&vec![0.0; self.cfg.embed_dim]));
        AttrSignatures {
            name,
            value,
            format,
            embedding,
        }
    }

    /// Total byte footprint of the four indexes (Table II accounting:
    /// signatures + tree labels).
    pub fn index_byte_size(&self) -> usize {
        self.i_n.byte_size() + self.i_v.byte_size() + self.i_f.byte_size() + self.i_e.byte_size()
    }

    /// Per-index byte footprints `(IN, IV, IF, IE)`.
    pub fn index_byte_sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.i_n.byte_size(),
            self.i_v.byte_size(),
            self.i_f.byte_size(),
            self.i_e.byte_size(),
        )
    }

    /// Full memory accounting: per-index forest footprints split into
    /// tree arrays and stored signature maps, plus the retained
    /// attribute profiles.
    pub fn byte_size(&self) -> MemoryFootprint {
        let index_of = |trees: usize, sigs: usize| IndexFootprint {
            tree_bytes: trees,
            signature_bytes: sigs,
        };
        let profile_bytes: usize = self
            .profiles
            .iter()
            .flat_map(|t| t.iter())
            .map(AttributeProfile::byte_size)
            .sum();
        MemoryFootprint {
            i_n: index_of(self.i_n.tree_byte_size(), self.i_n.signature_byte_size()),
            i_v: index_of(self.i_v.tree_byte_size(), self.i_v.signature_byte_size()),
            i_f: index_of(self.i_f.tree_byte_size(), self.i_f.signature_byte_size()),
            i_e: index_of(self.i_e.tree_byte_size(), self.i_e.signature_byte_size()),
            profile_bytes,
        }
    }

    /// Map from table name to id for result post-processing. Removed
    /// tables are excluded — their tombstoned ids must not resolve.
    pub fn name_to_id(&self) -> HashMap<&str, TableId> {
        self.names
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.removed[*i])
            .map(|(i, n)| (n.as_str(), TableId(i as u32)))
            .collect()
    }
}

/// Byte footprint of one LSH forest, split by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexFootprint {
    /// Sorted per-tree `(label, item)` arrays.
    pub tree_bytes: usize,
    /// Stored full signatures (similarity refinement at query time).
    pub signature_bytes: usize,
}

impl IndexFootprint {
    /// Trees plus signatures.
    pub fn total(&self) -> usize {
        self.tree_bytes + self.signature_bytes
    }
}

/// Memory accounting of a [`D3l`] instance ([`D3l::byte_size`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// `IN` — attribute-name q-gram index.
    pub i_n: IndexFootprint,
    /// `IV` — value-token index.
    pub i_v: IndexFootprint,
    /// `IF` — format-pattern index.
    pub i_f: IndexFootprint,
    /// `IE` — embedding index.
    pub i_e: IndexFootprint,
    /// Retained attribute profiles (hashed token sets, embeddings,
    /// numeric extents).
    pub profile_bytes: usize,
}

impl MemoryFootprint {
    /// Everything: the four indexes plus the profiles.
    pub fn total(&self) -> usize {
        self.i_n.total()
            + self.i_v.total()
            + self.i_f.total()
            + self.i_e.total()
            + self.profile_bytes
    }

    /// Element-wise sum of per-shard footprints. An empty slice is an
    /// all-zero footprint.
    pub fn sum(parts: &[MemoryFootprint]) -> MemoryFootprint {
        let mut total = MemoryFootprint::default();
        for fp in parts {
            for (acc, add) in [
                (&mut total.i_n, fp.i_n),
                (&mut total.i_v, fp.i_v),
                (&mut total.i_f, fp.i_f),
                (&mut total.i_e, fp.i_e),
            ] {
                acc.tree_bytes += add.tree_bytes;
                acc.signature_bytes += add.signature_bytes;
            }
            total.profile_bytes += fp.profile_bytes;
        }
        total
    }

    /// The four `(name, footprint)` index entries, for display.
    pub fn indexes(&self) -> [(&'static str, IndexFootprint); 4] {
        [
            ("IN", self.i_n),
            ("IV", self.i_v),
            ("IF", self.i_f),
            ("IE", self.i_e),
        ]
    }
}

/// Generate the four signatures of a profile, straight from the
/// hashed token sets — each token was hashed once at profile time and
/// the MinHash fast path derives every permutation value from the
/// stored hashes.
pub(crate) fn sign_profile(
    profile: &AttributeProfile,
    minhasher: &MinHasher,
    projector: &RandomProjector,
) -> AttrSignatures {
    AttrSignatures {
        name: minhasher.sign_token_set(&profile.qset),
        value: minhasher.sign_token_set(&profile.tset),
        format: minhasher.sign_token_set(&profile.rset),
        embedding: projector.sign(&profile.embedding),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3l_table::Table;

    fn figure1_lake() -> DataLake {
        let mut lake = DataLake::new();
        lake.add(
            Table::from_rows(
                "S1_gp_practices",
                &["Practice Name", "Address", "City", "Postcode", "Patients"],
                &[
                    vec![
                        "Dr E Cullen".into(),
                        "51 Botanic Av".into(),
                        "Belfast".into(),
                        "BT7 1JL".into(),
                        "1202".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "1a Chapel St".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "3572".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "S2_gp_funding",
                &["Practice", "City", "Postcode", "Payment"],
                &[
                    vec![
                        "The London Clinic".into(),
                        "London".into(),
                        "W1G 6BW".into(),
                        "73648".into(),
                    ],
                    vec![
                        "Blackfriars".into(),
                        "Salford".into(),
                        "M3 6AF".into(),
                        "15530".into(),
                    ],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake.add(
            Table::from_rows(
                "S3_local_gps",
                &["GP", "Location", "Opening hours"],
                &[
                    vec!["Blackfriars".into(), "Salford".into(), "08:00-18:00".into()],
                    vec!["Radclife Care".into(), "-".into(), "07:00-20:00".into()],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        lake
    }

    #[test]
    fn attr_ref_key_round_trip() {
        let a = AttrRef {
            table: TableId(12345),
            column: 67,
        };
        assert_eq!(AttrRef::from_key(a.key()), a);
    }

    #[test]
    fn attr_ref_key_round_trips_at_packing_limits() {
        for table in [0, 1, u32::MAX] {
            for column in [0, 1, AttrRef::MAX_COLUMN] {
                let a = AttrRef {
                    table: TableId(table),
                    column,
                };
                assert_eq!(
                    AttrRef::from_key(a.key()),
                    a,
                    "corrupted at table={table} column={column}"
                );
            }
        }
        // Distinct refs at the bit boundary stay distinct.
        let hi_col = AttrRef {
            table: TableId(0),
            column: AttrRef::MAX_COLUMN,
        };
        let lo_tab = AttrRef {
            table: TableId(1),
            column: 0,
        };
        assert_ne!(hi_col.key(), lo_tab.key());
    }

    #[test]
    #[should_panic(expected = "24-bit packing limit")]
    #[cfg(debug_assertions)]
    fn attr_ref_key_rejects_oversized_column() {
        let _ = AttrRef {
            table: TableId(0),
            column: AttrRef::MAX_COLUMN + 1,
        }
        .key();
    }

    #[test]
    fn indexes_cover_the_lake() {
        let lake = figure1_lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        assert_eq!(d3l.table_count(), 3);
        assert_eq!(d3l.table_name(TableId(0)), "S1_gp_practices");
        assert_eq!(d3l.table_arity(TableId(0)), 5);
        // All 12 attributes are in IN/IF; numeric ones skip IV/IE.
        assert_eq!(d3l.i_n.len(), 12);
        assert_eq!(d3l.i_f.len(), 12);
        assert_eq!(d3l.i_v.len(), 10, "Patients and Payment are numeric");
        assert_eq!(d3l.i_e.len(), 10);
        assert!(d3l.index_byte_size() > 0);
        let (n, v, f, e) = d3l.index_byte_sizes();
        assert_eq!(n + v + f + e, d3l.index_byte_size());
    }

    #[test]
    fn memory_footprint_is_consistent() {
        let lake = figure1_lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let fp = d3l.byte_size();
        let (n, v, f, e) = d3l.index_byte_sizes();
        assert_eq!(fp.i_n.total(), n);
        assert_eq!(fp.i_v.total(), v);
        assert_eq!(fp.i_f.total(), f);
        assert_eq!(fp.i_e.total(), e);
        assert!(fp.profile_bytes > 0, "profiles retain the token hashes");
        assert_eq!(fp.total(), d3l.index_byte_size() + fp.profile_bytes);
        for (name, idx) in fp.indexes() {
            assert!(!name.is_empty());
            assert!(idx.tree_bytes > 0, "{name} has tree labels");
            assert!(idx.signature_bytes > 0, "{name} stores signatures");
        }
    }

    #[test]
    fn subject_attributes_detected() {
        let lake = figure1_lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        // S1's subject is Practice Name (column 0).
        assert_eq!(
            d3l.subject_of(TableId(0)),
            Some(AttrRef {
                table: TableId(0),
                column: 0
            })
        );
        // S2's subject is Practice (column 0).
        assert_eq!(d3l.subject_of(TableId(1)).unwrap().column, 0);
        // S3's subject is GP (column 0).
        assert_eq!(d3l.subject_of(TableId(2)).unwrap().column, 0);
    }

    #[test]
    fn stored_signatures_round_trip() {
        let lake = figure1_lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let attr = AttrRef {
            table: TableId(0),
            column: 0,
        };
        let sigs = d3l.stored_signatures(attr);
        // Same profile signed fresh gives identical signatures.
        let fresh = sign_profile(d3l.profile(attr), &d3l.minhasher, &d3l.projector);
        assert_eq!(sigs.name, fresh.name);
        assert_eq!(sigs.value, fresh.value);
    }

    #[test]
    fn numeric_attr_gets_empty_value_signature() {
        let lake = figure1_lake();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        let patients = AttrRef {
            table: TableId(0),
            column: 4,
        };
        let sigs = d3l.stored_signatures(patients);
        let empty = d3l.minhasher.sign_strs([]);
        assert_eq!(sigs.value, empty);
    }

    #[test]
    fn empty_lake_indexes_cleanly() {
        let lake = DataLake::new();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        assert_eq!(d3l.table_count(), 0);
        assert_eq!(d3l.i_n.len(), 0);
    }

    #[test]
    fn incremental_add_matches_batch_indexing() {
        let lake = figure1_lake();
        // Batch: all three tables at once.
        let batch = D3l::index_lake(&lake, D3lConfig::fast());
        // Incremental: two tables, then add the third.
        let mut two = DataLake::new();
        two.add(lake.table(TableId(0)).clone()).unwrap();
        two.add(lake.table(TableId(1)).clone()).unwrap();
        let mut incremental = D3l::index_lake(&two, D3lConfig::fast());
        let id = incremental.add_table(lake.table(TableId(2)));
        assert_eq!(id, TableId(2));
        assert_eq!(incremental.table_count(), 3);
        assert_eq!(incremental.i_n.len(), batch.i_n.len());
        // Signatures are identical (same hashers).
        let attr = AttrRef {
            table: TableId(2),
            column: 0,
        };
        assert_eq!(
            incremental.stored_signatures(attr).name,
            batch.stored_signatures(attr).name
        );
        assert_eq!(
            incremental.subject_of(TableId(2)),
            batch.subject_of(TableId(2))
        );
    }

    #[test]
    fn added_table_is_discoverable() {
        let lake = figure1_lake();
        let mut partial = DataLake::new();
        partial.add(lake.table(TableId(2)).clone()).unwrap(); // only S3
        let mut d3l = D3l::index_lake(&partial, D3lConfig::fast());
        d3l.add_table(lake.table(TableId(0))); // add S1 incrementally
        let target = lake.table(TableId(1)); // S2 as target
        let matches = d3l.query(target, 2);
        assert!(
            matches.iter().any(|m| m.table == TableId(1)),
            "incrementally added S1 must be found for the S2 target"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let lake = figure1_lake();
        let serial = D3l::index_lake(
            &lake,
            D3lConfig {
                index_threads: 1,
                ..D3lConfig::fast()
            },
        );
        let parallel = D3l::index_lake(
            &lake,
            D3lConfig {
                index_threads: 4,
                ..D3lConfig::fast()
            },
        );
        assert_eq!(serial.i_n.len(), parallel.i_n.len());
        let attr = AttrRef {
            table: TableId(1),
            column: 2,
        };
        assert_eq!(
            serial.stored_signatures(attr).name,
            parallel.stored_signatures(attr).name
        );
    }
}
