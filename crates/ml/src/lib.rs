//! # d3l-ml — machine-learning substrate
//!
//! The two supervised components the paper relies on:
//!
//! * [`logreg`] — L2-regularized logistic regression optimized by
//!   cyclic coordinate descent (the paper cites Hsieh et al., ICML
//!   2008). D3L trains this on (related / unrelated) table pairs whose
//!   features are the five Eq.-1 distances, and uses the coefficients
//!   as the evidence weights of Eq. 3 (§III-D).
//! * [`subject`] — the subject-attribute classifier (after Venetis et
//!   al., PVLDB 2011): identifies the column naming the entities a
//!   table is about, used by Algorithm 2's guards and by SA-join
//!   discovery (§IV). "Favours leftmost non-numeric attributes with
//!   fewer nulls and many distinct values" (§III-C).
//!
//! [`cv`] provides the seeded k-fold cross-validation used to report
//! both models' ~89% accuracies, and [`metrics`] the usual binary
//! classification measures.

pub mod cv;
pub mod logreg;
pub mod metrics;
pub mod subject;

pub use cv::{cross_validate, kfold_indices};
pub use logreg::LogisticRegression;
pub use metrics::BinaryMetrics;
pub use subject::{subject_attribute, subject_features, SubjectClassifier, SUBJECT_FEATURES};
