//! Seeded k-fold cross-validation (the paper reports a 10-fold CV
//! accuracy of ~89% for the subject-attribute classifier, §III-C).

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::logreg::LogisticRegression;
use crate::metrics::BinaryMetrics;

/// Deterministic k-fold index split: returns `k` disjoint test-index
/// sets covering `0..n`, shuffled by `seed`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(n >= k, "need at least one sample per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (i, id) in idx.into_iter().enumerate() {
        folds[i % k].push(id);
    }
    folds
}

/// k-fold cross-validation of logistic regression; returns the pooled
/// metrics over all held-out folds.
pub fn cross_validate(xs: &[Vec<f64>], ys: &[bool], k: usize, seed: u64) -> BinaryMetrics {
    assert_eq!(xs.len(), ys.len());
    let folds = kfold_indices(xs.len(), k, seed);
    let mut metrics = BinaryMetrics::default();
    for fold in &folds {
        let in_fold: std::collections::HashSet<usize> = fold.iter().copied().collect();
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        for i in 0..xs.len() {
            if !in_fold.contains(&i) {
                train_x.push(xs[i].clone());
                train_y.push(ys[i]);
            }
        }
        // A fold whose training part is single-class still trains (the
        // model degenerates to the prior), mirroring real CV practice.
        let model = LogisticRegression::train(&train_x, &train_y);
        for &i in fold {
            metrics.observe(model.predict(&xs[i]), ys[i]);
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_everything() {
        let folds = kfold_indices(103, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // balanced within 1
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 7));
        assert_ne!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 8));
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let v = i as f64 / 100.0;
            xs.push(vec![v]);
            ys.push(v > 1.0);
        }
        let m = cross_validate(&xs, &ys, 10, 1);
        assert_eq!(m.total(), 200);
        assert!(m.accuracy() > 0.95, "cv accuracy {}", m.accuracy());
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        kfold_indices(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "one sample per fold")]
    fn too_few_samples_panics() {
        kfold_indices(3, 10, 0);
    }
}
