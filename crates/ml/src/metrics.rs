//! Binary classification metrics.

/// Confusion-matrix-backed metrics for a binary classifier.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryMetrics {
    /// Accumulate one (predicted, actual) observation.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Build from parallel prediction/label slices.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len());
        let mut m = BinaryMetrics::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.observe(p, a);
        }
        m
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// (tp + tn) / total; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// tp / (tp + fp); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// tp / (tp + fn); 0 when no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = BinaryMetrics::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn mixed_confusion() {
        // tp=1 fp=1 tn=1 fn=1
        let m = BinaryMetrics::from_predictions(
            &[true, true, false, false],
            &[true, false, false, true],
        );
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.fn_, 1);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = BinaryMetrics::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        // never predicts positive
        let m = BinaryMetrics::from_predictions(&[false, false], &[true, false]);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
    }
}
