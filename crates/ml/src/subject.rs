//! Subject-attribute detection (§III-C).
//!
//! "Given a dataset, a subject attribute identifies the entities the
//! dataset is about. … Intuitively, this approach favours leftmost
//! non-numeric attributes with fewer nulls and many distinct values.
//! As in [15], we assume each dataset has only one subject attribute
//! and that this attribute has non-numeric values."
//!
//! The paper builds a classification model (after Venetis et al.) and
//! 10-fold cross-validates it on 350 manually labelled tables from
//! data.gov.uk at ~89% accuracy. Here the same feature set feeds a
//! [`LogisticRegression`]; a sensible default model is provided, and
//! the experiment harness trains/validates one on generated labelled
//! tables (DESIGN.md §4, substitution 4).

use d3l_table::{ColumnType, Table};
use serde::{Deserialize, Serialize};

use crate::logreg::LogisticRegression;

/// Number of features extracted per column.
pub const SUBJECT_FEATURES: usize = 5;

/// Feature vector for "is column `idx` the subject attribute of
/// `table`?":
///
/// 1. leftness — `1 - idx / arity` (subject attributes are leftmost);
/// 2. non-numeric — 1.0 for textual columns;
/// 3. distinct ratio — many distinct values;
/// 4. fill ratio — `1 - null_ratio` (few nulls);
/// 5. multi-word ratio proxy — normalized average length (entity
///    names are longer than codes/flags).
pub fn subject_features(table: &Table, idx: usize) -> [f64; SUBJECT_FEATURES] {
    let col = &table.columns()[idx];
    let arity = table.arity().max(1) as f64;
    let leftness = 1.0 - idx as f64 / arity;
    let non_numeric = if col.column_type() == ColumnType::Text {
        1.0
    } else {
        0.0
    };
    let distinct = col.distinct_ratio();
    let fill = 1.0 - col.null_ratio();
    let avg_len = (col.avg_len() / 20.0).min(1.0);
    [leftness, non_numeric, distinct, fill, avg_len]
}

/// A trained (or default) subject-attribute classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubjectClassifier {
    model: LogisticRegression,
}

impl SubjectClassifier {
    /// Wrap a trained model (feature dimension must be
    /// [`SUBJECT_FEATURES`]).
    pub fn new(model: LogisticRegression) -> Self {
        assert_eq!(model.weights().len(), SUBJECT_FEATURES);
        SubjectClassifier { model }
    }

    /// The built-in default: coefficients encoding the paper's stated
    /// intuition, usable without a training corpus.
    pub fn default_model() -> Self {
        SubjectClassifier {
            model: LogisticRegression::from_coefficients(vec![2.5, 3.0, 2.0, 1.5, 1.0], -5.5),
        }
    }

    /// Access the underlying model.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Score of one column being the subject attribute.
    pub fn score(&self, table: &Table, idx: usize) -> f64 {
        self.model.predict_proba(&subject_features(table, idx))
    }

    /// The subject attribute of a table: the highest-scoring
    /// *non-numeric* column (the paper assumes non-numeric subjects).
    /// `None` for tables with no textual column.
    pub fn subject_of(&self, table: &Table) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, col) in table.columns().iter().enumerate() {
            if col.column_type() != ColumnType::Text {
                continue;
            }
            let s = self.score(table, i);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl Default for SubjectClassifier {
    fn default() -> Self {
        SubjectClassifier::default_model()
    }
}

/// Convenience: subject attribute with the default classifier —
/// `get_subject_attribute(T)` in Algorithm 2.
pub fn subject_attribute(table: &Table) -> Option<usize> {
    SubjectClassifier::default_model().subject_of(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3l_table::Table;

    fn s1() -> Table {
        // Figure 1's S1: subject attribute should be "Practice Name".
        Table::from_rows(
            "S1",
            &["Practice Name", "Address", "City", "Postcode", "Patients"],
            &[
                vec![
                    "Dr E Cullen".into(),
                    "51 Botanic Av".into(),
                    "Belfast".into(),
                    "BT7 1JL".into(),
                    "1202".into(),
                ],
                vec![
                    "Blackfriars".into(),
                    "1a Chapel St".into(),
                    "Salford".into(),
                    "M3 6AF".into(),
                    "3572".into(),
                ],
                vec![
                    "The London Clinic".into(),
                    "20 Devonshire Pl".into(),
                    "London".into(),
                    "W1G 6BW".into(),
                    "73648".into(),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_subject_is_practice_name() {
        let t = s1();
        assert_eq!(subject_attribute(&t), Some(0));
    }

    #[test]
    fn numeric_columns_are_never_subjects() {
        let t = Table::from_rows(
            "nums",
            &["id", "value"],
            &[
                vec!["1".into(), "2.5".into()],
                vec!["2".into(), "3.5".into()],
            ],
        )
        .unwrap();
        assert_eq!(subject_attribute(&t), None);
    }

    #[test]
    fn repeated_city_column_loses_to_distinct_names() {
        // A rightmost distinct name column still beats a leftmost
        // low-distinct one when the distinct gap is large.
        let rows: Vec<Vec<String>> = (0..20)
            .map(|i| vec!["Salford".to_string(), format!("Practice {i} Health Centre")])
            .collect();
        let t = Table::from_rows("t", &["City", "Name"], &rows).unwrap();
        let c = SubjectClassifier::default_model();
        assert!(c.score(&t, 1) > c.score(&t, 0));
    }

    #[test]
    fn features_are_bounded() {
        let t = s1();
        for i in 0..t.arity() {
            for f in subject_features(&t, i) {
                assert!((0.0..=1.0).contains(&f), "feature {f} out of range");
            }
        }
    }

    #[test]
    fn nulls_penalize() {
        let mostly_null: Vec<Vec<String>> = (0..10)
            .map(|i| {
                vec![
                    if i < 8 {
                        String::new()
                    } else {
                        format!("name{i}")
                    },
                    format!("entity number {i}"),
                ]
            })
            .collect();
        let t = Table::from_rows("t", &["sparse", "dense"], &mostly_null).unwrap();
        let c = SubjectClassifier::default_model();
        assert!(c.score(&t, 1) > c.score(&t, 0));
        assert_eq!(c.subject_of(&t), Some(1));
    }

    #[test]
    fn trained_classifier_roundtrip() {
        // Train on simple synthetic features and wrap.
        let xs = vec![
            vec![1.0, 1.0, 1.0, 1.0, 0.8],
            vec![0.2, 0.0, 0.1, 1.0, 0.1],
            vec![0.9, 1.0, 0.9, 0.9, 0.7],
            vec![0.4, 0.0, 0.2, 0.8, 0.05],
        ];
        let ys = vec![true, false, true, false];
        let m = LogisticRegression::train(&xs, &ys);
        let c = SubjectClassifier::new(m);
        assert!(c.model().weights().len() == SUBJECT_FEATURES);
    }
}
