//! L2-regularized logistic regression trained by cyclic coordinate
//! descent with per-coordinate Newton steps.

use serde::{Deserialize, Serialize};

/// A trained binary logistic regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// L2 regularization strength.
    pub lambda: f64,
    /// Maximum sweeps over the coordinates.
    pub max_iters: usize,
    /// Stop when the largest coordinate update falls below this.
    pub tol: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lambda: 1e-3,
            max_iters: 200,
            tol: 1e-6,
        }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// A model with explicit coefficients (used to seed the
    /// subject-attribute classifier's default and for tests).
    pub fn from_coefficients(weights: Vec<f64>, bias: f64) -> Self {
        LogisticRegression { weights, bias }
    }

    /// Learned feature coefficients.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// P(y = 1 | x).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        let z = self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        sigmoid(z)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Mean log-loss of the model on a dataset.
    pub fn log_loss(&self, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let p = self.predict_proba(x).clamp(1e-12, 1.0 - 1e-12);
            total -= if y { p.ln() } else { (1.0 - p).ln() };
        }
        total / xs.len() as f64
    }

    /// Train with default hyper-parameters.
    pub fn train(xs: &[Vec<f64>], ys: &[bool]) -> Self {
        Self::train_with(xs, ys, &TrainConfig::default())
    }

    /// Train by cyclic coordinate descent.
    ///
    /// Each sweep updates the bias and every weight in turn with a
    /// one-dimensional Newton step on the regularized logistic loss,
    /// keeping a running margin vector so one sweep costs `O(n · d)`.
    pub fn train_with(xs: &[Vec<f64>], ys: &[bool], cfg: &TrainConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "empty training set");
        let d = xs[0].len();
        for x in xs {
            assert_eq!(x.len(), d, "ragged feature vectors");
        }
        let n = xs.len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        // margins[i] = b + w · x_i, maintained incrementally.
        let mut margins = vec![0.0; n];

        for _ in 0..cfg.max_iters {
            let mut max_delta: f64 = 0.0;

            // Bias coordinate.
            let (mut g, mut h) = (0.0, 0.0);
            for (i, &y) in ys.iter().enumerate() {
                let p = sigmoid(margins[i]);
                g += p - if y { 1.0 } else { 0.0 };
                h += p * (1.0 - p);
            }
            let delta_b = -g / (h + 1e-9);
            b += delta_b;
            for m in &mut margins {
                *m += delta_b;
            }
            max_delta = max_delta.max(delta_b.abs());

            // Weight coordinates.
            for j in 0..d {
                let (mut g, mut h) = (cfg.lambda * n as f64 * w[j], cfg.lambda * n as f64);
                for (i, &y) in ys.iter().enumerate() {
                    let xij = xs[i][j];
                    if xij == 0.0 {
                        continue;
                    }
                    let p = sigmoid(margins[i]);
                    g += (p - if y { 1.0 } else { 0.0 }) * xij;
                    h += p * (1.0 - p) * xij * xij;
                }
                let delta = -g / (h + 1e-9);
                if delta != 0.0 {
                    w[j] += delta;
                    for (i, x) in xs.iter().enumerate() {
                        margins[i] += delta * x[j];
                    }
                }
                max_delta = max_delta.max(delta.abs());
            }

            if max_delta < cfg.tol {
                break;
            }
        }
        LogisticRegression {
            weights: w,
            bias: b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: y = (x0 + x1 > 1).
    fn toy() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = i as f64 / 10.0;
                let b = j as f64 / 10.0;
                xs.push(vec![a, b]);
                ys.push(a + b > 1.0);
            }
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = toy();
        let m = LogisticRegression::train(&xs, &ys);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.97,
            "{correct}/{}",
            xs.len()
        );
        // weights should be positive for both coordinates
        assert!(m.weights()[0] > 0.0 && m.weights()[1] > 0.0);
    }

    #[test]
    fn probabilities_are_calibrated_at_boundary() {
        let (xs, ys) = toy();
        let m = LogisticRegression::train(&xs, &ys);
        // Points on the decision line get probability near 0.5.
        let p = m.predict_proba(&[0.5, 0.5]);
        assert!((p - 0.5).abs() < 0.2, "boundary p = {p}");
        assert!(m.predict_proba(&[2.0, 2.0]) > 0.95);
        assert!(m.predict_proba(&[0.0, 0.0]) < 0.05);
    }

    #[test]
    fn loss_decreases_with_training() {
        let (xs, ys) = toy();
        let untrained = LogisticRegression::from_coefficients(vec![0.0, 0.0], 0.0);
        let trained = LogisticRegression::train(&xs, &ys);
        assert!(trained.log_loss(&xs, &ys) < untrained.log_loss(&xs, &ys));
    }

    #[test]
    fn regularization_shrinks_weights() {
        let (xs, ys) = toy();
        let loose = LogisticRegression::train_with(
            &xs,
            &ys,
            &TrainConfig {
                lambda: 1e-6,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::train_with(
            &xs,
            &ys,
            &TrainConfig {
                lambda: 1.0,
                ..Default::default()
            },
        );
        let norm = |m: &LogisticRegression| m.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![true, true];
        let m = LogisticRegression::train(&xs, &ys);
        assert!(m.predict_proba(&[1.5]) > 0.5);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        LogisticRegression::train(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_panics() {
        let m = LogisticRegression::from_coefficients(vec![1.0], 0.0);
        m.predict_proba(&[1.0, 2.0]);
    }
}
