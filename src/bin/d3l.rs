//! `d3l` — command-line dataset discovery over a directory of CSVs.
//!
//! ```text
//! d3l index   <lake-dir> --out <index-dir> [--shards N]
//! d3l query   <lake-dir>|--index <index-dir> <target.csv> [-k N] [--joins] [--evidence N|V|F|E|D] [--threads N]
//! d3l serve   --index <index-dir> [--shards N] [--port P] [--host H] [--threads N] [--cache-bytes N[k|m|g]] [--max-queue N] [--slow-query-ms N] [--watch <lake-dir>] [--reload-ms N]
//! d3l watch   <lake-dir> --index <index-dir> [--poll-ms N] [--batch-ms N] [--batch-max N] [--compact-segments N] [--compact-bytes N[k|m|g]]
//! d3l stats   <lake-dir>|--index <index-dir>
//! d3l add     <index-dir> <table.csv>
//! d3l remove  <index-dir> <table-name>
//! d3l compact <index-dir>
//! d3l demo
//! ```
//!
//! The lake directory is any folder of `*.csv` files (header row
//! required). The target is a CSV with the schema you want to
//! populate plus a few exemplar tuples.
//!
//! `index` pays the profiling cost once and persists the engine;
//! `query --index` / `stats --index` then cold-start from the
//! snapshot in milliseconds with no re-profiling. `add`/`remove`
//! profile only the delta and append it as a segment; `compact` folds
//! segments back into the base snapshot. `serve` turns the persisted
//! index into a long-lived concurrent HTTP service (see the README's
//! "Serving" section for the endpoints); SIGINT drains in-flight
//! requests before exiting. `watch` keeps an index continuously in
//! sync with a lake directory (micro-batched deltas + background
//! compaction; see the README's "Continuous ingestion" section);
//! `serve --watch` runs the watcher inside the server process, and
//! `serve --reload-ms` makes a read replica follow another process's
//! writes.

use std::collections::HashSet;
use std::process::ExitCode;
use std::time::Instant;

use d3l::benchgen;
use d3l::prelude::*;
use d3l::table::csv;

const USAGE: &str = "usage:\n  d3l index <lake-dir> --out <index-dir> [--shards N]\n  d3l query <lake-dir>|--index <index-dir> <target.csv> [-k N] [--joins] [--evidence N|V|F|E|D] [--threads N]\n  d3l serve --index <index-dir> [--shards N] [--port P] [--host H] [--threads N] [--cache-bytes N[k|m|g]] [--max-queue N] [--slow-query-ms N] [--watch <lake-dir> [watch flags]] [--reload-ms N]\n  d3l watch <lake-dir> --index <index-dir> [--poll-ms N] [--batch-ms N] [--batch-max N] [--compact-segments N] [--compact-bytes N[k|m|g]]\n  d3l stats <lake-dir>|--index <index-dir>\n  d3l add <index-dir> <table.csv>\n  d3l remove <index-dir> <table-name>\n  d3l compact <index-dir>\n  d3l demo";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("index") => cmd_index(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("remove") => cmd_remove(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_evidence(s: &str) -> Option<Evidence> {
    match s {
        "N" | "n" => Some(Evidence::Name),
        "V" | "v" => Some(Evidence::Value),
        "F" | "f" => Some(Evidence::Format),
        "E" | "e" => Some(Evidence::Embedding),
        "D" | "d" => Some(Evidence::Distribution),
        _ => None,
    }
}

/// Build an engine for serving: either a millisecond cold start from
/// a persisted index directory (monolithic or sharded — the layout is
/// auto-detected), or an index-on-the-fly over a raw CSV lake
/// directory.
fn load_engine(
    lake_dir: Option<&str>,
    index_dir: Option<&str>,
) -> Result<ShardedD3l, Box<dyn std::error::Error>> {
    match (lake_dir, index_dir) {
        (None, Some(index)) => {
            let start = Instant::now();
            let handle = EngineHandle::open(index)?;
            let snap = handle.snapshot();
            eprintln!(
                "cold start: loaded {} tables ({} shard{}) from {index} in {:.1} ms (no re-profiling)",
                snap.engine.live_table_count(),
                snap.engine.shard_count(),
                if snap.engine.shard_count() == 1 { "" } else { "s" },
                start.elapsed().as_secs_f64() * 1e3
            );
            Ok(snap.engine.clone())
        }
        (Some(dir), None) => {
            eprintln!("loading lake from {dir} ...");
            let lake = DataLake::load_dir(dir)?;
            eprintln!("indexing {} tables ...", lake.len());
            Ok(ShardedD3l::index_lake(&lake, D3lConfig::default()))
        }
        (Some(_), Some(_)) => Err("give either a lake directory or --index, not both".into()),
        (None, None) => Err("missing lake directory (or --index <index-dir>)".into()),
    }
}

fn cmd_index(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut dir = None;
    let mut out = None;
    let mut shards: usize = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().ok_or("missing value for --out")?.to_string()),
            "--shards" => {
                shards = it.next().ok_or("missing value for --shards")?.parse()?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dir = dir.ok_or("missing lake directory")?;
    let out = out.ok_or("missing --out <index-dir>")?;

    eprintln!("loading lake from {dir} ...");
    let lake = DataLake::load_dir(&dir)?;
    eprintln!("indexing {} tables ...", lake.len());
    let build_start = Instant::now();
    let cfg = D3lConfig {
        shards,
        ..Default::default()
    };
    let engine = ShardedD3l::index_lake(&lake, cfg);
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let save_start = Instant::now();
    let tables = engine.table_count();
    // The shard count rides in every shard's config, so `d3l serve`
    // and the maintenance commands reopen with the same partitioning
    // without being told.
    let handle = EngineHandle::create(&out, engine)?;
    let (base_bytes, _, _) = handle.disk_stats()?;
    println!(
        "indexed {tables} tables into {shards} shard{} in {build_ms:.1} ms; snapshot {base_bytes} bytes written to {out} in {:.1} ms",
        if shards == 1 { "" } else { "s" },
        save_start.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_add(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [index_dir, table_path] = args else {
        return Err("usage: d3l add <index-dir> <table.csv>".into());
    };
    let engine = EngineHandle::open(index_dir)?;
    let text = std::fs::read_to_string(table_path)?;
    let name = std::path::Path::new(table_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let table = csv::parse_csv(name, &text)?;
    let start = Instant::now();
    let (id, snap) = engine.add_table(&table)?;
    let shard = snap.engine.shard_of(table.name());
    let (_, _, segments) = engine.disk_stats()?;
    println!(
        "added {} as {id} (shard {shard}) in {:.1} ms ({segments} delta segments pending; run `d3l compact` to fold)",
        table.name(),
        start.elapsed().as_secs_f64() * 1e3,
    );
    Ok(())
}

fn cmd_remove(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [index_dir, table_name] = args else {
        return Err("usage: d3l remove <index-dir> <table-name>".into());
    };
    let engine = EngineHandle::open(index_dir)?;
    let (id, snap) = engine.remove_table(table_name)?;
    println!(
        "removed {table_name} ({id}); {} of {} tables still serving",
        snap.engine.live_table_count(),
        snap.engine.table_count()
    );
    Ok(())
}

fn cmd_compact(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [index_dir] = args else {
        return Err("usage: d3l compact <index-dir>".into());
    };
    let engine = EngineHandle::open(index_dir)?;
    let folded = engine.compact()?;
    let (base_bytes, _, _) = engine.disk_stats()?;
    println!("folded {folded} delta segments; base snapshot now {base_bytes} bytes");
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut dir, mut index_dir, mut target_path) = (None, None, None);
    let mut k = 10usize;
    let mut joins = false;
    let mut evidence = None;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-k" => {
                k = it.next().ok_or("missing value for -k")?.parse()?;
            }
            "--joins" => joins = true,
            "--evidence" => {
                let e = it.next().ok_or("missing value for --evidence")?;
                evidence = Some(parse_evidence(e).ok_or_else(|| format!("unknown evidence {e}"))?);
            }
            "--threads" => {
                threads = Some(it.next().ok_or("missing value for --threads")?.parse()?);
            }
            "--index" => {
                index_dir = Some(it.next().ok_or("missing value for --index")?.to_string());
            }
            other if dir.is_none() && index_dir.is_none() => dir = Some(other.to_string()),
            other if target_path.is_none() => target_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let target_path = target_path.ok_or("missing target csv")?;
    let d3l = load_engine(dir.as_deref(), index_dir.as_deref())?;

    let text = std::fs::read_to_string(&target_path)?;
    let target = csv::parse_csv("target", &text)?;

    // An explicit --threads flag beats the D3L_QUERY_THREADS env var,
    // so it goes through the per-query override.
    let opts = d3l::core::query::QueryOptions {
        evidence,
        threads,
        ..Default::default()
    };
    // Profile the target once; the ranking and the join-path
    // related-set lookup both reuse it.
    let prepared = d3l.prepare_target(&target);
    let matches = d3l.query_prepared(&prepared, k, &opts);
    if matches.is_empty() {
        println!("no related tables found");
        return Ok(());
    }
    println!("{:<40} {:>9} {:>9}", "table", "distance", "covered");
    for m in &matches {
        println!(
            "{:<40} {:>9.4} {:>6}/{}",
            d3l.table_name(m.table),
            m.distance,
            m.covered_targets().len(),
            target.arity()
        );
        for a in &m.alignments {
            println!(
                "    target.{} ← {}",
                target.columns()[a.target_column].name(),
                d3l.profile(a.source).name
            );
        }
    }

    if joins {
        // Algorithm 3 walks the SA-join graph, which is built over
        // one complete engine; a shard only holds its own partition,
        // so the graph is only available on a monolithic index.
        if d3l.shard_count() > 1 {
            return Err(format!(
                "--joins needs a monolithic index; this one has {} shards (rebuild with `d3l index --shards 1`)",
                d3l.shard_count()
            )
            .into());
        }
        let mono = &*d3l.shards()[0];
        let graph = mono.build_join_graph();
        let top: HashSet<TableId> = matches.iter().map(|m| m.table).collect();
        let related = d3l.related_table_set_prepared(&prepared, d3l.config().lookup_width(k));
        println!("\njoin paths from the top-{k}:");
        let mut any = false;
        for m in &matches {
            for path in mono.find_join_paths(&graph, m.table, &top, &related) {
                let names: Vec<&str> = path.nodes.iter().map(|&t| d3l.table_name(t)).collect();
                println!("  {}", names.join(" ⋈ "));
                any = true;
            }
        }
        if !any {
            println!("  (none)");
        }
    }
    Ok(())
}

/// Graceful-shutdown signals for `d3l serve`: SIGINT/SIGTERM set a
/// flag that a watcher thread turns into a server drain. Raw
/// `signal(2)` registration — std has no signal API and the workspace
/// takes no dependencies; the handler only stores into an atomic,
/// which is async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix
/// (case-insensitive, powers of 1024). `0` disables the result cache.
fn parse_byte_size(s: &str) -> Result<u64, Box<dyn std::error::Error>> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 10),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 20),
        Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid byte size {s:?} (expected N, Nk, Nm or Ng)"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("byte size {s:?} overflows u64").into())
}

/// Parse one continuous-ingestion flag into `cfg`. Returns `false`
/// when the flag is not a watch knob (the caller handles it), so
/// `d3l watch` and `d3l serve --watch` accept the same set.
fn parse_watch_flag(
    flag: &str,
    it: &mut std::slice::Iter<'_, String>,
    cfg: &mut WatchConfig,
) -> Result<bool, Box<dyn std::error::Error>> {
    use std::time::Duration;
    match flag {
        "--poll-ms" => {
            cfg.poll_interval =
                Duration::from_millis(it.next().ok_or("missing value for --poll-ms")?.parse()?);
        }
        "--batch-ms" => {
            cfg.batch_window =
                Duration::from_millis(it.next().ok_or("missing value for --batch-ms")?.parse()?);
        }
        "--batch-max" => {
            cfg.batch_max = it.next().ok_or("missing value for --batch-max")?.parse()?;
            if cfg.batch_max == 0 {
                return Err("--batch-max must be at least 1".into());
            }
        }
        "--compact-segments" => {
            cfg.compact_segments = it
                .next()
                .ok_or("missing value for --compact-segments")?
                .parse()?;
            if cfg.compact_segments == 0 {
                return Err("--compact-segments must be at least 1".into());
            }
        }
        "--compact-bytes" => {
            cfg.compact_bytes =
                parse_byte_size(it.next().ok_or("missing value for --compact-bytes")?)?;
            if cfg.compact_bytes == 0 {
                return Err("--compact-bytes must be at least 1".into());
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn cmd_watch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut lake_dir = None;
    let mut index_dir = None;
    let mut cfg = WatchConfig {
        verbose: true,
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--index" => {
                index_dir = Some(it.next().ok_or("missing value for --index")?.to_string());
            }
            other => {
                if parse_watch_flag(other, &mut it, &mut cfg)? {
                    continue;
                }
                if lake_dir.is_none() && !other.starts_with('-') {
                    lake_dir = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument {other}").into());
                }
            }
        }
    }
    let lake_dir = lake_dir.ok_or("missing lake directory to watch")?;
    let index_dir = index_dir.ok_or("missing --index <index-dir>")?;

    let start = Instant::now();
    let engine = std::sync::Arc::new(EngineHandle::open(&index_dir)?);
    let snap = engine.snapshot();
    eprintln!(
        "cold start: loaded {} tables from {index_dir} in {:.1} ms",
        snap.engine.live_table_count(),
        start.elapsed().as_secs_f64() * 1e3
    );
    let watcher = Watcher::start(engine, &lake_dir, cfg.clone())?;
    let stats = watcher.stats();
    println!(
        "watching {lake_dir} -> {index_dir} (poll {} ms, batch {} ms / {} changes, compact at {} segments or {} delta bytes); Ctrl-C stops",
        cfg.poll_interval.as_millis(),
        cfg.batch_window.as_millis(),
        cfg.batch_max,
        cfg.compact_segments,
        cfg.compact_bytes,
    );

    #[cfg(unix)]
    {
        sig::install();
        while !sig::requested() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("shutdown requested; draining settled changes ...");
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    watcher.shutdown();
    let lag = stats.ingest_lag();
    println!(
        "watched {} files; {} batches ({} adds, {} replaces, {} removes, {} skipped), {} compactions; ingest lag p50 {:.1} ms p99 {:.1} ms; bye",
        stats.files_tracked(),
        stats.batches(),
        stats.added(),
        stats.replaced(),
        stats.removed(),
        stats.skipped(),
        stats.compactions(),
        lag.quantile_ns(0.50) as f64 / 1e6,
        lag.quantile_ns(0.99) as f64 / 1e6,
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut index_dir = None;
    let mut port: u16 = 4333;
    let mut host = "127.0.0.1".to_string();
    let mut threads: usize = 0;
    let mut cache_bytes: u64 = d3l::core::cache::DEFAULT_CACHE_BYTES;
    let mut max_queue: usize = d3l::server::ServerConfig::default().max_queue;
    let mut slow_query_ms: u64 = d3l::server::ServerConfig::default().slow_query_ms;
    let mut shards: Option<usize> = None;
    let mut watch_dir: Option<String> = None;
    let mut watch_cfg = WatchConfig::default();
    let mut reload_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--index" => {
                index_dir = Some(it.next().ok_or("missing value for --index")?.to_string());
            }
            "--watch" => {
                watch_dir = Some(it.next().ok_or("missing value for --watch")?.to_string());
            }
            "--reload-ms" => {
                let ms: u64 = it.next().ok_or("missing value for --reload-ms")?.parse()?;
                if ms == 0 {
                    return Err("--reload-ms must be at least 1".into());
                }
                reload_ms = Some(ms);
            }
            "--shards" => {
                let n: usize = it.next().ok_or("missing value for --shards")?.parse()?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                shards = Some(n);
            }
            "--port" => port = it.next().ok_or("missing value for --port")?.parse()?,
            "--host" => host = it.next().ok_or("missing value for --host")?.to_string(),
            "--threads" => threads = it.next().ok_or("missing value for --threads")?.parse()?,
            "--cache-bytes" => {
                cache_bytes = parse_byte_size(it.next().ok_or("missing value for --cache-bytes")?)?;
            }
            "--max-queue" => {
                max_queue = it.next().ok_or("missing value for --max-queue")?.parse()?;
            }
            "--slow-query-ms" => {
                slow_query_ms = it
                    .next()
                    .ok_or("missing value for --slow-query-ms")?
                    .parse()?;
            }
            other => {
                if !parse_watch_flag(other, &mut it, &mut watch_cfg)? {
                    return Err(format!("unexpected argument {other}").into());
                }
            }
        }
    }
    let index_dir = index_dir.ok_or("missing --index <index-dir>")?;
    if watch_dir.is_some() && reload_ms.is_some() {
        // One process per index directory writes; --watch makes this
        // server the writer, --reload-ms makes it a follower.
        return Err("--watch and --reload-ms are mutually exclusive (the watcher is the single writer; replicas follow with --reload-ms)".into());
    }

    let start = Instant::now();
    let engine = std::sync::Arc::new(d3l::core::EngineHandle::open(&index_dir)?);
    let snap = engine.snapshot();
    // The layout on disk decides the shard count (it rides in every
    // shard's config); an explicit --shards is a cross-check against
    // serving the wrong index, not a way to repartition.
    if let Some(n) = shards {
        if n != snap.engine.shard_count() {
            return Err(format!(
                "--shards {n} does not match the index at {index_dir}, which has {} shard{} (repartition with `d3l index --shards {n}`)",
                snap.engine.shard_count(),
                if snap.engine.shard_count() == 1 { "" } else { "s" },
            )
            .into());
        }
    }
    eprintln!(
        "cold start: loaded {} tables ({} shard{}) from {index_dir} in {:.1} ms",
        snap.engine.live_table_count(),
        snap.engine.shard_count(),
        if snap.engine.shard_count() == 1 {
            ""
        } else {
            "s"
        },
        start.elapsed().as_secs_f64() * 1e3
    );

    let cfg = d3l::server::ServerConfig {
        threads,
        cache_bytes,
        max_queue,
        slow_query_ms,
        ..Default::default()
    };
    let server = d3l::server::Server::bind((host.as_str(), port), engine.clone(), cfg)?;
    let addr = server.local_addr()?;
    let workers = server.effective_threads();
    // The CLI tests parse this line to learn the ephemeral port, so
    // keep the "listening on" prefix stable.
    println!("listening on http://{addr} ({workers} workers); Ctrl-C drains and exits");
    if cache_bytes == 0 {
        println!("result cache: disabled");
    } else {
        println!("result cache: {cache_bytes} bytes; pending-connection queue: {max_queue}");
    }

    // Single-process continuous ingestion: the watcher writes deltas
    // into the same handle the workers serve from; queries keep
    // running on immutable snapshots while batches land.
    let mut watcher = None;
    if let Some(dir) = &watch_dir {
        let w = Watcher::start(engine.clone(), dir, watch_cfg.clone())?;
        server.attach_watch(w.stats());
        println!(
            "watching {dir} (poll {} ms, batch {} ms / {} changes, compact at {} segments or {} delta bytes)",
            watch_cfg.poll_interval.as_millis(),
            watch_cfg.batch_window.as_millis(),
            watch_cfg.batch_max,
            watch_cfg.compact_segments,
            watch_cfg.compact_bytes,
        );
        watcher = Some(w);
    }

    // Replica mode: another process (a watcher or the CLI mutators)
    // writes this index directory; this server polls the store and
    // hot-swaps in whatever new segments it finds.
    let reload_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut reload_thread = None;
    if let Some(ms) = reload_ms {
        println!("replica mode: following the index store every {ms} ms");
        let stop = reload_stop.clone();
        let eng = engine.clone();
        reload_thread = Some(std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            let slice = std::time::Duration::from_millis(50);
            let period = std::time::Duration::from_millis(ms);
            while !stop.load(Ordering::Relaxed) {
                if let Err(e) = eng.reload_latest() {
                    eprintln!("reload error: {e}");
                }
                let deadline = Instant::now() + period;
                while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                    std::thread::sleep(slice.min(deadline - Instant::now()));
                }
            }
        }));
    }

    #[cfg(unix)]
    {
        sig::install();
        let handle = server.shutdown_handle();
        std::thread::spawn(move || {
            while !sig::requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            eprintln!("shutdown requested; draining in-flight requests ...");
            handle.shutdown();
        });
    }

    let slow_handle = server.shutdown_handle();
    server.run()?;
    reload_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(t) = reload_thread {
        let _ = t.join();
    }
    if let Some(w) = watcher {
        eprintln!("stopping watcher; draining settled changes ...");
        w.shutdown();
    }
    // Post-drain dump: whatever the slow-query ring held when the
    // server stopped, so a SIGTERM'd deployment leaves a trail even if
    // nobody scraped /debug/slow_queries in time.
    if slow_handle.slow_query_count() > 0 {
        eprintln!("slow queries captured (threshold {slow_query_ms} ms):");
        eprintln!("{}", slow_handle.slow_queries_json());
    }
    println!("drained; bye");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (mut dir, mut index_dir) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--index" => {
                index_dir = Some(it.next().ok_or("missing value for --index")?.to_string());
            }
            other if dir.is_none() && index_dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }

    // On-disk accounting: the real store files when serving from an
    // index directory (monolithic or sharded), otherwise the snapshot
    // the lake would produce.
    let (d3l, disk, shard_disk) = match (&dir, &index_dir) {
        (None, Some(index)) => {
            let handle = EngineHandle::open(index)?;
            let snap = handle.snapshot();
            let per_shard = handle.shard_disk_stats()?;
            let (base, deltas, pending) = handle.disk_stats()?;
            (snap.engine.clone(), (base, deltas, pending), per_shard)
        }
        (Some(dir), None) => {
            let lake = DataLake::load_dir(dir)?;
            let stats = benchgen::RepoStats::compute(&lake);
            println!("tables:         {}", stats.tables);
            println!("attributes:     {}", stats.attributes);
            println!("mean arity:     {:.1}", stats.mean_arity());
            println!("mean rows:      {:.1}", stats.mean_cardinality());
            println!("numeric ratio:  {:.1}%", stats.numeric_ratio * 100.0);
            println!("raw bytes:      {}", stats.bytes);
            let mono = D3l::index_lake(&lake, D3lConfig::default());
            println!(
                "index bytes:    {} ({:.0}% overhead, in-memory)",
                mono.index_byte_size(),
                100.0 * mono.index_byte_size() as f64 / stats.bytes.max(1) as f64
            );
            let snapshot = mono.to_snapshot_bytes().len() as u64;
            (
                ShardedD3l::from_monolith(mono),
                (snapshot, 0, 0),
                Vec::new(),
            )
        }
        _ => return Err("give either a lake directory or --index <index-dir>".into()),
    };

    if index_dir.is_some() {
        println!("tables:         {}", d3l.table_count());
        if d3l.live_table_count() != d3l.table_count() {
            println!(
                "serving:        {} (rest tombstoned)",
                d3l.live_table_count()
            );
        }
        if d3l.shard_count() > 1 {
            println!("shards:         {}", d3l.shard_count());
            for (s, (base, deltas, segments)) in shard_disk.iter().enumerate() {
                println!(
                    "  shard-{s:02}: {} live tables, {base} base + {deltas} delta bytes ({segments} segments)",
                    d3l.shards()[s].live_table_count(),
                );
            }
        }
    }
    let fp = d3l.byte_size();
    println!("in-memory footprint (resident bytes):");
    println!(
        "  {:<10} {:>12} {:>12} {:>12}",
        "index", "trees", "signatures", "total"
    );
    for (name, idx) in fp.indexes() {
        println!(
            "  {:<10} {:>12} {:>12} {:>12}",
            name,
            idx.tree_bytes,
            idx.signature_bytes,
            idx.total()
        );
    }
    println!(
        "  {:<10} {:>12} {:>12} {:>12}",
        "profiles", "-", "-", fp.profile_bytes
    );
    println!("  {:<10} {:>12} {:>12} {:>12}", "total", "", "", fp.total());
    let (base, deltas, pending) = disk;
    println!("on-disk snapshot (serialized bytes):");
    match index_dir {
        Some(_) => {
            println!("  {:<16} {:>12}", "base snapshot", base);
            println!(
                "  {:<16} {:>12} ({pending} segments)",
                "delta segments", deltas
            );
            println!("  {:<16} {:>12}", "total", base + deltas);
        }
        None => println!(
            "  {:<16} {:>12} (if persisted with `d3l index`)",
            "base snapshot", base
        ),
    }
    Ok(())
}

fn cmd_demo() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("d3l_demo_{}", std::process::id()));
    eprintln!("generating a demo lake in {} ...", dir.display());
    let bench = benchgen::smaller_real(48, 1);
    bench.lake.save_dir(&dir)?;
    // Keep the target outside the lake directory so it is not indexed
    // as a lake member.
    let target_path =
        std::env::temp_dir().join(format!("d3l_demo_target_{}.csv", std::process::id()));
    // Use the first generated table's CSV as the target.
    let tname = bench.pick_targets(1, 1)[0].clone();
    let target = bench.lake.table_by_name(&tname).expect("member");
    std::fs::write(&target_path, csv::to_csv(target))?;
    println!("demo lake: {} tables; target: {tname}", bench.lake.len());
    cmd_query(&[
        dir.to_string_lossy().into_owned(),
        target_path.to_string_lossy().into_owned(),
        "-k".into(),
        "5".into(),
        "--joins".into(),
    ])?;
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&target_path).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_flags_parse_case_insensitively() {
        for (flag, want) in [
            ("N", Evidence::Name),
            ("V", Evidence::Value),
            ("F", Evidence::Format),
            ("E", Evidence::Embedding),
            ("D", Evidence::Distribution),
        ] {
            assert_eq!(parse_evidence(flag), Some(want));
            assert_eq!(parse_evidence(&flag.to_lowercase()), Some(want));
        }
    }

    #[test]
    fn evidence_flags_cover_every_evidence_type() {
        for e in Evidence::ALL {
            let flag = format!("{e:?}").chars().next().unwrap().to_string();
            assert_eq!(
                parse_evidence(&flag),
                Some(e),
                "flag {flag} must map back to {e:?}"
            );
        }
    }

    #[test]
    fn unknown_evidence_flags_are_rejected() {
        for bad in ["X", "", "NV", "name", "0"] {
            assert_eq!(parse_evidence(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn query_rejects_missing_and_unexpected_arguments() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cmd_query(&args(&[])).is_err(), "missing lake dir must fail");
        assert!(
            cmd_query(&args(&["lake-dir"])).is_err(),
            "missing target must fail"
        );
        assert!(
            cmd_query(&args(&["a", "b", "c"])).is_err(),
            "third positional argument must fail"
        );
        assert!(
            cmd_query(&args(&["-k"])).is_err(),
            "-k without value must fail"
        );
        assert!(
            cmd_query(&args(&["-k", "x"])).is_err(),
            "non-numeric -k must fail"
        );
        assert!(
            cmd_query(&args(&["--evidence"])).is_err(),
            "--evidence without value must fail"
        );
        assert!(
            cmd_query(&args(&["--threads"])).is_err(),
            "--threads without value must fail"
        );
        assert!(
            cmd_query(&args(&["--threads", "x", "a", "b"])).is_err(),
            "non-numeric --threads must fail"
        );
        assert!(
            cmd_query(&args(&["--evidence", "Z", "a", "b"])).is_err(),
            "unknown evidence letter must fail"
        );
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cmd_serve(&args(&[])).is_err(), "serve needs --index");
        assert!(
            cmd_serve(&args(&["--index"])).is_err(),
            "--index needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--port"])).is_err(),
            "--port needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--port", "not-a-port"])).is_err(),
            "--port must parse"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--threads", "x"])).is_err(),
            "--threads must parse"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "stray"])).is_err(),
            "positional arguments are rejected"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--cache-bytes"])).is_err(),
            "--cache-bytes needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--cache-bytes", "64q"])).is_err(),
            "unknown byte suffix must fail"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--max-queue", "-1"])).is_err(),
            "--max-queue must parse as usize"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--slow-query-ms"])).is_err(),
            "--slow-query-ms needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--slow-query-ms", "soon"])).is_err(),
            "--slow-query-ms must parse as u64"
        );
        assert!(
            cmd_serve(&args(&["--index", "/definitely/not/a/store"])).is_err(),
            "missing store must fail before binding"
        );
    }

    #[test]
    fn watch_rejects_bad_arguments() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cmd_watch(&args(&[])).is_err(), "watch needs a lake dir");
        assert!(
            cmd_watch(&args(&["lake-dir"])).is_err(),
            "watch needs --index"
        );
        assert!(
            cmd_watch(&args(&["lake-dir", "--index"])).is_err(),
            "--index needs a value"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "b"])).is_err(),
            "extra positional must fail"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--poll-ms"])).is_err(),
            "--poll-ms needs a value"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--poll-ms", "soon"])).is_err(),
            "--poll-ms must parse"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--batch-ms", "x"])).is_err(),
            "--batch-ms must parse"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--batch-max", "0"])).is_err(),
            "--batch-max 0 must fail"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--compact-segments", "0"])).is_err(),
            "--compact-segments 0 must fail"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--compact-bytes", "64q"])).is_err(),
            "unknown byte suffix must fail"
        );
        assert!(
            cmd_watch(&args(&["a", "--index", "idx", "--compact-bytes", "0"])).is_err(),
            "--compact-bytes 0 must fail"
        );
        assert!(
            cmd_watch(&args(&[
                "/nonexistent/lake",
                "--index",
                "/nonexistent/index"
            ]))
            .is_err(),
            "missing store must fail before watching"
        );
    }

    #[test]
    fn serve_watch_flags_are_validated() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(
            cmd_serve(&args(&["--index", "idx", "--watch"])).is_err(),
            "--watch needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--reload-ms"])).is_err(),
            "--reload-ms needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--reload-ms", "soon"])).is_err(),
            "--reload-ms must parse"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--reload-ms", "0"])).is_err(),
            "--reload-ms 0 must fail"
        );
        assert!(
            cmd_serve(&args(&[
                "--index",
                "idx",
                "--watch",
                "lake",
                "--reload-ms",
                "100"
            ]))
            .is_err(),
            "--watch and --reload-ms are mutually exclusive"
        );
        assert!(
            cmd_serve(&args(&[
                "--index",
                "idx",
                "--watch",
                "lake",
                "--batch-max",
                "0"
            ]))
            .is_err(),
            "serve --batch-max 0 must fail"
        );
    }

    #[test]
    fn byte_sizes_accept_binary_suffixes() {
        assert_eq!(parse_byte_size("0").unwrap(), 0);
        assert_eq!(parse_byte_size("4096").unwrap(), 4096);
        assert_eq!(parse_byte_size("8k").unwrap(), 8 * 1024);
        assert_eq!(parse_byte_size("8K").unwrap(), 8 * 1024);
        assert_eq!(parse_byte_size("64m").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_byte_size("2G").unwrap(), 2 * 1024 * 1024 * 1024);
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("k").is_err());
        assert!(parse_byte_size("12.5m").is_err());
        assert!(parse_byte_size("-3k").is_err());
        assert!(parse_byte_size("99999999999999999999g").is_err());
        assert!(
            parse_byte_size("18446744073709551615k").is_err(),
            "suffix shift past u64::MAX must fail, not wrap"
        );
    }

    #[test]
    fn stats_requires_a_directory() {
        assert!(cmd_stats(&[]).is_err());
        assert!(cmd_stats(&["/nonexistent/lake/dir".to_string()]).is_err());
    }

    #[test]
    fn store_commands_reject_bad_arguments() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cmd_index(&args(&[])).is_err(), "index needs a lake dir");
        assert!(
            cmd_index(&args(&["lake-dir"])).is_err(),
            "index needs --out"
        );
        assert!(
            cmd_index(&args(&["lake-dir", "--out"])).is_err(),
            "--out needs a value"
        );
        assert!(
            cmd_index(&args(&["a", "--out", "b", "c"])).is_err(),
            "extra positional must fail"
        );
        assert!(
            cmd_index(&args(&["a", "--out", "b", "--shards"])).is_err(),
            "--shards needs a value"
        );
        assert!(
            cmd_index(&args(&["a", "--out", "b", "--shards", "0"])).is_err(),
            "zero shards must fail"
        );
        assert!(
            cmd_index(&args(&["a", "--out", "b", "--shards", "x"])).is_err(),
            "non-numeric --shards must fail"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--shards"])).is_err(),
            "serve --shards needs a value"
        );
        assert!(
            cmd_serve(&args(&["--index", "idx", "--shards", "0"])).is_err(),
            "serve --shards 0 must fail"
        );
        assert!(cmd_add(&args(&["only-one"])).is_err());
        assert!(cmd_add(&args(&["/nonexistent/index", "t.csv"])).is_err());
        assert!(cmd_remove(&args(&["only-one"])).is_err());
        assert!(cmd_remove(&args(&["/nonexistent/index", "t"])).is_err());
        assert!(cmd_compact(&args(&[])).is_err());
        assert!(cmd_compact(&args(&["/nonexistent/index"])).is_err());
        assert!(
            cmd_query(&args(&["--index"])).is_err(),
            "--index needs a value"
        );
        assert!(
            cmd_query(&args(&["lake", "--index", "idx", "t.csv"])).is_err(),
            "lake dir and --index are mutually exclusive"
        );
        assert!(
            cmd_stats(&args(&["lake", "--index", "idx"])).is_err(),
            "stats takes one source"
        );
    }
}
