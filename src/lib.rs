//! # d3l — Dataset Discovery in Data Lakes
//!
//! A from-scratch Rust implementation of **D3L** (Bogatu, Fernandes,
//! Paton, Konstantinou — *Dataset Discovery in Data Lakes*, ICDE
//! 2020), together with every substrate it needs and the two systems
//! it is evaluated against.
//!
//! Given a *data lake* (a pile of tables with no relationship
//! metadata) and a *target* table with exemplar tuples, D3L returns
//! the k most *related* tables — those whose attributes draw values
//! from the same domains as the target's, and which are therefore
//! unionable with it — and extends the result with *join paths* that
//! cover additional target attributes.
//!
//! ## Quick start
//!
//! ```
//! use d3l::prelude::*;
//!
//! // A tiny lake with one useful table and one decoy.
//! let mut lake = DataLake::new();
//! lake.add(Table::from_rows(
//!     "gp_funding",
//!     &["Practice", "City", "Payment"],
//!     &[
//!         vec!["Blackfriars".into(), "Salford".into(), "15530".into()],
//!         vec!["The London Clinic".into(), "London".into(), "73648".into()],
//!     ],
//! ).unwrap()).unwrap();
//! lake.add(Table::from_rows(
//!     "planets",
//!     &["Planet", "Moons"],
//!     &[vec!["Saturn".into(), "146".into()]],
//! ).unwrap()).unwrap();
//!
//! // Index once, query with a target.
//! let d3l = D3l::index_lake(&lake, D3lConfig::fast());
//! let target = Table::from_rows(
//!     "gps",
//!     &["Practice", "City"],
//!     &[vec!["Blackfriars".into(), "Salford".into()]],
//! ).unwrap();
//! let top = d3l.query(&target, 1);
//! assert_eq!(d3l.table_name(top[0].table), "gp_funding");
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `d3l-core` | the paper's contribution: indexes, distances, Eq. 1–3, join paths |
//! | [`table`] | `d3l-table` | tables, CSV, the in-memory lake |
//! | [`lsh`] | `d3l-lsh` | MinHash, random projections, banded LSH, LSH Forest |
//! | [`features`] | `d3l-features` | q-grams, tokens, format patterns, KS |
//! | [`embedding`] | `d3l-embedding` | the fastText stand-in word embedder |
//! | [`store`] | `d3l-store` | binary snapshot codec + container for the persistent index store |
//! | [`server`] | `d3l-server` | concurrent HTTP serving layer over the store (`d3l serve`) |
//! | [`ml`] | `d3l-ml` | logistic regression, CV, the subject-attribute classifier |
//! | [`baselines`] | `d3l-baselines` | TUS and Aurum reimplementations |
//! | [`benchgen`] | `d3l-benchgen` | benchmark repositories with ground truth |

pub use d3l_baselines as baselines;
pub use d3l_benchgen as benchgen;
pub use d3l_core as core;
pub use d3l_embedding as embedding;
pub use d3l_features as features;
pub use d3l_lsh as lsh;
pub use d3l_ml as ml;
pub use d3l_server as server;
pub use d3l_store as store;
pub use d3l_table as table;

/// The most common imports in one place.
pub mod prelude {
    pub use d3l_core::{
        AttrRef, D3l, D3lConfig, DistanceVector, EngineHandle, Evidence, EvidenceWeights,
        IndexStore, Ingestor, JoinPath, SaJoinGraph, ShardedD3l, TableMatch, WatchConfig,
        WatchStats, Watcher,
    };
    pub use d3l_embedding::{Lexicon, SemanticEmbedder, WordEmbedder};
    pub use d3l_table::{Column, ColumnType, DataLake, Table, TableId};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_work() {
        let lake = DataLake::new();
        let d3l = D3l::index_lake(&lake, D3lConfig::fast());
        assert_eq!(d3l.table_count(), 0);
        assert!(Evidence::ALL.len() == 5);
    }
}
